package profile

import (
	"strings"
	"sync"
	"testing"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/rowblock"
)

// rowTrap is a sink Emit that records everything delivered.
type rowTrap struct {
	mu   sync.Mutex
	rows []rowblock.Row
}

func (rt *rowTrap) emit(table string, rows []rowblock.Row) error {
	if table != obs.SystemProfilesTable {
		return nil
	}
	rt.mu.Lock()
	rt.rows = append(rt.rows, rows...)
	rt.mu.Unlock()
	return nil
}

func (rt *rowTrap) snapshot() []rowblock.Row {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]rowblock.Row(nil), rt.rows...)
}

// byTrigger returns the trapped rows whose trigger column matches.
func (rt *rowTrap) byTrigger(trigger string) []rowblock.Row {
	var out []rowblock.Row
	for _, r := range rt.snapshot() {
		if r.Cols["trigger"].Str == trigger {
			out = append(out, r)
		}
	}
	return out
}

func newTestProfiler(t *testing.T, trap *rowTrap, mut func(*Config)) *Profiler {
	t.Helper()
	sink := obs.NewSink(obs.SinkConfig{
		Emit:            trap.emit,
		Source:          "test-leaf",
		MetricsInterval: -1,
	})
	t.Cleanup(sink.Close)
	cfg := Config{
		Sink:          sink,
		Source:        "test-leaf",
		Interval:      -1, // no steady loop; tests drive captures directly
		AnomalyWindow: 20 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	p := New(cfg)
	t.Cleanup(p.Close)
	return p
}

// waitRows polls until cond sees the trapped rows it wants.
func waitRows(t *testing.T, sink func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sink() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("timed out waiting for profile rows")
}

func TestCaptureEmitsTotalAndSchema(t *testing.T) {
	trap := &rowTrap{}
	p := newTestProfiler(t, trap, nil)
	if !p.CaptureNow(TriggerInterval, "", 0) {
		t.Fatal("CaptureNow failed")
	}
	waitRows(t, func() bool { return len(trap.byTrigger(TriggerInterval)) > 0 })
	rows := trap.byTrigger(TriggerInterval)
	var total *rowblock.Row
	for i := range rows {
		if rows[i].Cols["function"].Str == TotalFunction {
			total = &rows[i]
		}
	}
	if total == nil {
		t.Fatalf("no %q row in %d rows", TotalFunction, len(rows))
	}
	for _, col := range []string{"source", "capture", "t_us", "trigger", "trace_id", "detail", "function", "flat_ns", "cum_ns", "alloc_bytes", "inuse_bytes", "goroutines", "window_ms"} {
		if _, ok := total.Cols[col]; !ok {
			t.Errorf("total row missing column %q", col)
		}
	}
	if total.Cols["source"].Str != "test-leaf" {
		t.Errorf("source = %q", total.Cols["source"].Str)
	}
	if total.Cols["goroutines"].Int <= 0 {
		t.Errorf("goroutines = %d", total.Cols["goroutines"].Int)
	}
	if total.Cols["window_ms"].Int <= 0 {
		t.Errorf("window_ms = %d", total.Cols["window_ms"].Int)
	}
	if total.Cols["t_us"].Int <= 0 || total.Cols["capture"].Str == "" {
		t.Errorf("capture id missing: t_us=%d capture=%q", total.Cols["t_us"].Int, total.Cols["capture"].Str)
	}
}

func TestOnTraceTriggersTaggedCapture(t *testing.T) {
	trap := &rowTrap{}
	p := newTestProfiler(t, trap, nil)

	p.OnTrace(obs.Trace{Slow: false, TraceID: 1, Table: "events"})
	p.OnTrace(obs.Trace{Slow: true, TraceID: 2, Table: obs.SystemMetricsTable})
	p.OnTrace(obs.Trace{Slow: true, TraceID: 4242, Table: "events", Query: "SELECT count FROM events"})

	waitRows(t, func() bool { return len(trap.byTrigger(TriggerSlowQuery)) > 0 })
	rows := trap.byTrigger(TriggerSlowQuery)
	for _, r := range rows {
		if got := r.Cols["trace_id"].Int; got != 4242 {
			t.Fatalf("trace_id = %d, want 4242 (non-slow or __system trace leaked through)", got)
		}
		if !strings.Contains(r.Cols["detail"].Str, "SELECT count") {
			t.Fatalf("detail = %q", r.Cols["detail"].Str)
		}
	}
}

func TestAnomalyCooldown(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	trap := &rowTrap{}
	p := newTestProfiler(t, trap, func(c *Config) {
		c.AnomalyCooldown = time.Minute
		c.Clock = func() time.Time { return now }
	})
	if !p.TriggerCapture(TriggerSlowQuery, "first", 1) {
		t.Fatal("first anomaly should always capture")
	}
	if p.TriggerCapture(TriggerSlowQuery, "second", 2) {
		t.Fatal("second anomaly inside the cooldown should drop")
	}
	now = now.Add(2 * time.Minute)
	if !p.TriggerCapture(TriggerSlowQuery, "third", 3) {
		t.Fatal("anomaly after the cooldown should capture")
	}
}

func TestObserveRestartPhase(t *testing.T) {
	trap := &rowTrap{}
	p := newTestProfiler(t, trap, func(c *Config) {
		c.RestartBudget = 100 * time.Millisecond
		c.AnomalyCooldown = time.Nanosecond
	})
	p.ObserveRestartPhase("copy_in", "shm-view", 50*time.Millisecond, 0) // under budget
	p.ObserveRestartPhase("wal_replay", "wal", 2*time.Second, 0)         // over budget

	waitRows(t, func() bool { return len(trap.byTrigger(TriggerRestart)) > 0 })
	for _, r := range trap.byTrigger(TriggerRestart) {
		d := r.Cols["detail"].Str
		if !strings.Contains(d, "phase=wal_replay") || !strings.Contains(d, "path=wal") {
			t.Fatalf("detail = %q (under-budget phase must not capture)", d)
		}
	}
}

func TestGCPauseSpikeTriggersCapture(t *testing.T) {
	reg := metrics.NewRegistry()
	trap := &rowTrap{}
	p := newTestProfiler(t, trap, func(c *Config) {
		c.Registry = reg
		c.GCPauseBudget = time.Millisecond
		c.AnomalyCooldown = time.Nanosecond
	})
	// No data yet: no trigger.
	p.checkGCPause()
	// A 100ms pause lands the p99 far over the 1ms budget.
	reg.Histogram("runtime.gc_pause_hist").ObserveDuration(100 * time.Millisecond)
	p.checkGCPause()
	waitRows(t, func() bool { return len(trap.byTrigger(TriggerGCPause)) > 0 })
	before := len(trap.byTrigger(TriggerGCPause))
	// p99 is still over budget but no new GCs happened: must not re-trigger.
	p.checkGCPause()
	time.Sleep(100 * time.Millisecond)
	if after := len(trap.byTrigger(TriggerGCPause)); after != before {
		t.Fatalf("re-triggered without new GCs: %d -> %d rows", before, after)
	}
}

func TestSelfCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	trap := &rowTrap{}
	p := newTestProfiler(t, trap, func(c *Config) {
		c.Registry = reg
		c.AnomalyCooldown = time.Hour
	})
	p.CaptureNow(TriggerInterval, "", 0)
	p.TriggerCapture(TriggerSlowQuery, "", 1)
	p.TriggerCapture(TriggerSlowQuery, "", 2) // dropped by cooldown
	waitRows(t, func() bool { return len(trap.byTrigger(TriggerSlowQuery)) > 0 })
	snap := reg.Snapshot()
	if snap.Counters["profile.captures"] < 2 {
		t.Errorf("profile.captures = %d, want >= 2", snap.Counters["profile.captures"])
	}
	if snap.Counters["profile.anomalies"] < 1 {
		t.Errorf("profile.anomalies = %d", snap.Counters["profile.anomalies"])
	}
	if snap.Counters["profile.dropped"] < 1 {
		t.Errorf("profile.dropped = %d", snap.Counters["profile.dropped"])
	}
}

func TestSteadyCadence(t *testing.T) {
	trap := &rowTrap{}
	sink := obs.NewSink(obs.SinkConfig{Emit: trap.emit, Source: "cadence", MetricsInterval: -1})
	defer sink.Close()
	p := New(Config{
		Sink:     sink,
		Source:   "cadence",
		Interval: 80 * time.Millisecond, // window auto-clamps to interval/2
	})
	defer p.Close()
	waitRows(t, func() bool { return len(trap.byTrigger(TriggerInterval)) >= 2 })
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.Close()
	p.OnTrace(obs.Trace{Slow: true})
	p.ObserveRestartPhase("copy_in", "memory", time.Hour, 0)
	if p.TriggerCapture("x", "", 0) || p.CaptureNow("x", "", 0) {
		t.Fatal("nil profiler captured")
	}
}
