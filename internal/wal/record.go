// WAL record framing and the row payload codec.
//
// Each record frames one ingested batch:
//
//	u32 magic "WAL1"
//	u64 start     global row index of the batch's first row
//	u32 count     rows in the batch
//	u32 length    payload bytes
//	payload       encoded rows
//	u32 CRC-32C   over everything above
//
// The payload is row-oriented — the log is value logging, replayed through
// the normal ingest path — with each row self-describing so batches with
// heterogeneous schemas frame without a segment-level schema:
//
//	zigzag varint time
//	uvarint ncols
//	per column: uvarint name length, name bytes, u8 type, value
//	    int64/time  zigzag varint
//	    float64     8 bytes LE
//	    string      uvarint length + bytes
//	    string set  uvarint count + (uvarint length + bytes)*
//
// A record that runs past the end of the segment, or fails its CRC as the
// segment's final record, is torn: the fsync it was waiting on never
// completed, so its batch was never acknowledged and replay discards it
// whole. A bad record with intact records after it is corruption — those
// later records may hold acked data, so replay aborts instead.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"scuba/internal/layout"
	"scuba/internal/rowblock"
)

const recordMagic uint32 = 0x314C4157 // "WAL1"

// recordOverhead is the framing cost outside the payload.
const recordOverhead = 4 + 8 + 4 + 4 + 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by the decode path.
var (
	// ErrCorrupt marks a structurally invalid record in the middle of the
	// log — unlike a torn tail, data after it may be lost, so replay aborts
	// and recovery falls back to the disk translate.
	ErrCorrupt = errors.New("wal: corrupt record")
	// errTorn marks an incomplete or CRC-failing record at the end of a
	// buffer: the write (or its fsync) never finished, so the batch was
	// never acknowledged and is discarded whole.
	errTorn = errors.New("wal: torn tail record")
)

// appendRecord frames one batch onto dst.
func appendRecord(dst []byte, start int64, rows []rowblock.Row) []byte {
	base := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, recordMagic)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(start))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // payload length, patched below
	payloadAt := len(dst)
	for _, r := range rows {
		dst = appendRow(dst, r)
	}
	binary.LittleEndian.PutUint32(dst[base+16:], uint32(len(dst)-payloadAt))
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[base:], crcTable))
}

func appendRow(dst []byte, r rowblock.Row) []byte {
	dst = binary.AppendUvarint(dst, zigzag(r.Time))
	dst = binary.AppendUvarint(dst, uint64(len(r.Cols)))
	// Sort column names so a batch encodes identically run to run; map
	// iteration order must not leak into CRCs or golden tests.
	names := make([]string, 0, len(r.Cols))
	for name := range r.Cols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := r.Cols[name]
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		dst = append(dst, byte(v.Type))
		switch v.Type {
		case layout.TypeInt64, layout.TypeTime:
			dst = binary.AppendUvarint(dst, zigzag(v.Int))
		case layout.TypeFloat64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float))
		case layout.TypeString:
			dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
			dst = append(dst, v.Str...)
		case layout.TypeStringSet:
			dst = binary.AppendUvarint(dst, uint64(len(v.Set)))
			for _, s := range v.Set {
				dst = binary.AppendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
		default:
			// An unknown type encodes as an empty string so the record stays
			// well-formed; the table would have rejected the row anyway.
			dst[len(dst)-1] = byte(layout.TypeString)
			dst = binary.AppendUvarint(dst, 0)
		}
	}
	return dst
}

// decodeRecord parses the record at the head of b, returning its start
// index, rows, and total encoded size. errTorn means b ends mid-record or
// the CRC fails — the caller decides whether that is a legal tail.
func decodeRecord(b []byte) (start int64, rows []rowblock.Row, used int, err error) {
	if len(b) < recordOverhead {
		return 0, nil, 0, errTorn
	}
	if binary.LittleEndian.Uint32(b) != recordMagic {
		return 0, nil, 0, fmt.Errorf("%w: magic %08x", ErrCorrupt, binary.LittleEndian.Uint32(b))
	}
	start = int64(binary.LittleEndian.Uint64(b[4:]))
	count := int(binary.LittleEndian.Uint32(b[12:]))
	plen := int(binary.LittleEndian.Uint32(b[16:]))
	used = recordOverhead + plen
	if plen < 0 || used < 0 || used > len(b) {
		// Incomplete extent: the write never finished. used stays 0 so the
		// caller sees the record has no known end.
		return 0, nil, 0, errTorn
	}
	body := b[:20+plen]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[20+plen:]) {
		// The extent is known even though the CRC failed: the caller uses it
		// to tell a torn final record from mid-log corruption.
		return 0, nil, used, errTorn
	}
	rows, err = decodeRows(body[20:], count)
	if err != nil {
		// The CRC passed, so this is an encoder bug or a forged file, not a
		// torn write: treat as corruption.
		return 0, nil, 0, err
	}
	return start, rows, used, nil
}

func decodeRows(b []byte, count int) ([]rowblock.Row, error) {
	// A row costs at least 2 bytes encoded; reject counts the payload
	// cannot hold before allocating (untrusted input must not size allocs).
	if count < 0 || count > len(b)/2+1 {
		return nil, fmt.Errorf("%w: %d rows in %d payload bytes", ErrCorrupt, count, len(b))
	}
	pos := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad varint at %d", ErrCorrupt, pos)
		}
		pos += n
		return v, nil
	}
	str := func() (string, error) {
		l, err := uvarint()
		if err != nil {
			return "", err
		}
		if uint64(len(b)-pos) < l {
			return "", fmt.Errorf("%w: string overruns payload", ErrCorrupt)
		}
		s := string(b[pos : pos+int(l)])
		pos += int(l)
		return s, nil
	}
	rows := make([]rowblock.Row, 0, count)
	for i := 0; i < count; i++ {
		tu, err := uvarint()
		if err != nil {
			return nil, err
		}
		ncols, err := uvarint()
		if err != nil {
			return nil, err
		}
		if ncols > uint64(len(b)-pos) {
			return nil, fmt.Errorf("%w: %d columns overrun payload", ErrCorrupt, ncols)
		}
		row := rowblock.Row{Time: unzigzag(tu), Cols: make(map[string]rowblock.Value, ncols)}
		for c := uint64(0); c < ncols; c++ {
			name, err := str()
			if err != nil {
				return nil, err
			}
			if pos >= len(b) {
				return nil, fmt.Errorf("%w: truncated column type", ErrCorrupt)
			}
			vt := layout.ValueType(b[pos])
			pos++
			var v rowblock.Value
			switch vt {
			case layout.TypeInt64, layout.TypeTime:
				u, err := uvarint()
				if err != nil {
					return nil, err
				}
				v = rowblock.Value{Type: vt, Int: unzigzag(u)}
			case layout.TypeFloat64:
				if pos+8 > len(b) {
					return nil, fmt.Errorf("%w: float overruns payload", ErrCorrupt)
				}
				v = rowblock.Float64Value(math.Float64frombits(binary.LittleEndian.Uint64(b[pos:])))
				pos += 8
			case layout.TypeString:
				s, err := str()
				if err != nil {
					return nil, err
				}
				v = rowblock.StringValue(s)
			case layout.TypeStringSet:
				n, err := uvarint()
				if err != nil {
					return nil, err
				}
				if n > uint64(len(b)-pos) {
					return nil, fmt.Errorf("%w: set overruns payload", ErrCorrupt)
				}
				set := make([]string, 0, n)
				for j := uint64(0); j < n; j++ {
					s, err := str()
					if err != nil {
						return nil, err
					}
					set = append(set, s)
				}
				v = rowblock.SetValue(set...)
			default:
				return nil, fmt.Errorf("%w: column type %d", ErrCorrupt, vt)
			}
			row.Cols[name] = v
		}
		rows = append(rows, row)
	}
	if pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(b)-pos)
	}
	return rows, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
