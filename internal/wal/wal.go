// Package wal gives a leaf crash-path parity with its clean-restart path: a
// per-table write-ahead log on the ingest path plus incremental columnar
// snapshots of sealed blocks, so crash recovery is "load snapshots + replay
// the log tail" instead of the full row-format disk translate the paper
// reports costing hours (§1).
//
// Layout, per table, under the log root:
//
//	<enc(table)>/wal-<seq>-<start>.log    log segments; <start> is the global
//	                                      row index of the segment's first
//	                                      record, so truncation and replay
//	                                      never parse a segment to place it
//	<enc(table)>/snap-<start>-<count>-<maxtime>.col
//	                                      RBK2 block images of sealed blocks
//	<enc(table)>/watermark                monotone snapshot watermark W: every
//	                                      row below W is in a snapshot image
//	                                      or expired by retention
//	<enc(table)>/quarantined              marker: this table's log stopped
//	                                      mirroring memory (a batch was
//	                                      rejected mid-apply); crash recovery
//	                                      takes the disk path until the next
//	                                      restart resets the log
//
// Appends are group-committed: records are written to the active segment
// immediately, and the appender blocks until a background flusher fsyncs the
// segment (SyncInterval cadence; <=0 fsyncs inline). The caller only acks
// its client after Append returns, so acked rows are always durable; a batch
// lost to a torn tail write was by construction never acked.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scuba/internal/disk"
	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/rowblock"
)

// Options configure a Log.
type Options struct {
	// SyncInterval is the group-commit cadence: appenders wait for the next
	// background fsync at most this far away. <=0 fsyncs on every append.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size (default 4 MB).
	// Truncation deletes whole closed segments, so smaller segments reclaim
	// space sooner at the cost of more files.
	SegmentBytes int64
	// Metrics, when non-nil, receives wal.* counters (append rows, fsyncs,
	// truncated segments, snapshot blocks, replayed rows).
	Metrics *metrics.Registry
}

// ErrClosed is returned for operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// ErrGap means the log tail does not reach back to the snapshot watermark:
// rows in between are in neither a snapshot image nor the log (the window
// between a non-WAL restore and the first snapshot pass). Recovery falls
// back to the disk translate.
var ErrGap = errors.New("wal: gap between snapshot watermark and log tail")

// Log is one leaf's write-ahead log and snapshot store.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	tables map[string]*tableLog
	closed bool

	stop chan struct{}
	done chan struct{}
}

// tableLog is one table's active segment and group-commit state.
type tableLog struct {
	dir string

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File // active segment; nil until the first append
	size int64    // bytes written to the active segment
	seq  int      // active segment sequence number
	next int64    // global row index the next append starts at

	appendSeq   int64 // records written
	syncedSeq   int64 // records durably fsynced
	flushGen    int64 // flush attempts; pairs with flushErr for waiters
	flushErr    error // outcome of the newest flush attempt
	dirty       bool
	quarantined bool
	closed      bool
}

// Open opens (creating if needed) the log rooted at dir.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create root: %w", err)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	l := &Log{
		dir:    dir,
		opts:   opts,
		tables: make(map[string]*tableLog),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if opts.SyncInterval > 0 {
		go l.flushLoop()
	} else {
		close(l.done)
	}
	return l, nil
}

// Dir returns the log root.
func (l *Log) Dir() string { return l.dir }

func (l *Log) tableDir(table string) string {
	return filepath.Join(l.dir, disk.EncodeTableName(table))
}

func (l *Log) counter(name string) *metrics.Counter {
	if l.opts.Metrics == nil {
		return nil
	}
	return l.opts.Metrics.Counter(name)
}

func addCount(c *metrics.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// ---- Segment and snapshot file naming ----

type segFile struct {
	seq   int
	start int64
	name  string
}

func parseSegFile(name string) (segFile, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return segFile{}, false
	}
	core := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	seqStr, startStr, ok := strings.Cut(core, "-")
	if !ok {
		return segFile{}, false
	}
	seq, err1 := strconv.Atoi(seqStr)
	start, err2 := strconv.ParseInt(startStr, 10, 64)
	if err1 != nil || err2 != nil {
		return segFile{}, false
	}
	return segFile{seq: seq, start: start, name: name}, true
}

func listSegments(dir string) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []segFile
	for _, e := range entries {
		if sf, ok := parseSegFile(e.Name()); ok {
			out = append(out, sf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// syncDir fsyncs a directory so renames and newly created files in it are
// durable, not just their contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- Append path ----

// tableLogFor returns (creating if needed) the table's log state. A new
// tableLog continues after the highest existing segment; its cursor comes
// from cursors set by recovery (SetCursor) or, for a table with existing
// segments and no cursor, from scanning the newest segment's records.
func (l *Log) tableLogFor(table string) (*tableLog, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if tl, ok := l.tables[table]; ok {
		return tl, nil
	}
	dir := l.tableDir(table)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: table dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	tl := &tableLog{dir: dir}
	tl.cond = sync.NewCond(&tl.mu)
	if _, err := os.Stat(filepath.Join(dir, quarantineMarker)); err == nil {
		tl.quarantined = true
	}
	if n := len(segs); n > 0 {
		tl.seq = segs[n-1].seq
		end, err := scanSegmentEnd(filepath.Join(dir, segs[n-1].name), segs[n-1].start)
		if err != nil {
			return nil, err
		}
		tl.next = end
	}
	l.tables[table] = tl
	return tl, nil
}

// scanSegmentEnd walks a segment's records to find the row index after its
// last intact record (a torn tail is skipped, matching replay).
func scanSegmentEnd(path string, start int64) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	end := start
	for off := 0; off < len(data); {
		s, rows, used, err := decodeRecord(data[off:])
		if err != nil {
			break // torn or corrupt tail: appends continue after the last good record
		}
		end = s + int64(len(rows))
		off += used
	}
	return end, nil
}

// Append durably logs one batch for the table and returns once the record
// is fsynced (group commit). The record's start index is the log's cursor,
// which mirrors the table's cumulative accepted-row count. Appends to a
// quarantined table are dropped — its log already stopped mirroring memory
// and crash recovery will take the disk path.
func (l *Log) Append(table string, rows []rowblock.Row) error {
	if len(rows) == 0 {
		return nil
	}
	if err := fault.Inject(fault.SiteWALAppend); err != nil {
		return fmt.Errorf("wal: append %s: %w", table, err)
	}
	tl, err := l.tableLogFor(table)
	if err != nil {
		return err
	}
	if err := tl.append(rows, l.opts); err != nil {
		return fmt.Errorf("wal: append %s: %w", table, err)
	}
	addCount(l.counter("wal.append_rows"), int64(len(rows)))
	addCount(l.counter("wal.append_records"), 1)
	return nil
}

func (tl *tableLog) append(rows []rowblock.Row, opts Options) error {
	tl.mu.Lock()
	if tl.closed {
		tl.mu.Unlock()
		return ErrClosed
	}
	if tl.quarantined {
		tl.mu.Unlock()
		return nil
	}
	if tl.f == nil || tl.size >= opts.SegmentBytes {
		if err := tl.rotateLocked(); err != nil {
			tl.mu.Unlock()
			return err
		}
	}
	rec := appendRecord(nil, tl.next, rows)
	// Chaos runs corrupt the framed record in flight; replay must refuse it.
	fault.CorruptBytes(fault.SiteWALAppend, rec)
	if _, err := tl.f.Write(rec); err != nil {
		tl.mu.Unlock()
		return err
	}
	tl.size += int64(len(rec))
	tl.next += int64(len(rows))
	tl.appendSeq++
	my := tl.appendSeq

	if opts.SyncInterval <= 0 {
		err := tl.syncLocked()
		tl.mu.Unlock()
		return err
	}
	// Group commit: wait for a flush attempt that covers this record. A
	// failed attempt nacks every waiter it strands; the client retries.
	tl.dirty = true
	gen := tl.flushGen
	for tl.syncedSeq < my && !tl.closed {
		if tl.flushGen > gen {
			if tl.flushErr != nil {
				err := tl.flushErr
				tl.mu.Unlock()
				return err
			}
			gen = tl.flushGen
		}
		tl.cond.Wait()
	}
	var err error
	if tl.syncedSeq < my {
		err = ErrClosed
	}
	tl.mu.Unlock()
	return err
}

// syncLocked fsyncs the active segment. Called with tl.mu held.
func (tl *tableLog) syncLocked() error {
	if err := fault.Inject(fault.SiteWALSync); err != nil {
		return err
	}
	if tl.f == nil {
		return nil
	}
	if err := tl.f.Sync(); err != nil {
		return err
	}
	tl.syncedSeq = tl.appendSeq
	return nil
}

// rotateLocked fsyncs and closes the active segment (closed segments are
// always durable) and opens the next one, named by its first row index.
func (tl *tableLog) rotateLocked() error {
	if tl.f != nil {
		if err := tl.syncLocked(); err != nil {
			return err
		}
		if err := tl.f.Close(); err != nil {
			return err
		}
		tl.f = nil
		tl.cond.Broadcast() // rotation synced; release any group-commit waiters
	}
	tl.seq++
	name := fmt.Sprintf("wal-%08d-%d.log", tl.seq, tl.next)
	f, err := os.OpenFile(filepath.Join(tl.dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	tl.f = f
	tl.size = 0
	return syncDir(tl.dir)
}

// flushLoop is the group-commit flusher: every SyncInterval it fsyncs each
// dirty table's active segment and wakes that table's waiting appenders.
func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.flushAll()
		}
	}
}

func (l *Log) flushAll() {
	l.mu.Lock()
	tls := make([]*tableLog, 0, len(l.tables))
	for _, tl := range l.tables {
		tls = append(tls, tl)
	}
	l.mu.Unlock()
	for _, tl := range tls {
		tl.mu.Lock()
		if tl.dirty && tl.appendSeq > tl.syncedSeq && !tl.closed {
			err := tl.syncLocked()
			tl.flushErr = err
			tl.flushGen++
			if err == nil {
				tl.dirty = false
				addCount(l.counter("wal.fsyncs"), 1)
			}
			tl.cond.Broadcast()
		}
		tl.mu.Unlock()
	}
}

// ---- Truncation ----

// Truncate deletes closed segments whose every record is below the snapshot
// watermark w: a segment is disposable once its successor's first row index
// is <= w. The active (newest) segment is never deleted. Returns the number
// of segments removed.
func (l *Log) Truncate(table string, w int64) (int, error) {
	if err := fault.Inject(fault.SiteWALTruncate); err != nil {
		return 0, fmt.Errorf("wal: truncate %s: %w", table, err)
	}
	dir := l.tableDir(table)
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].start > w {
			break
		}
		if err := os.Remove(filepath.Join(dir, segs[i].name)); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		addCount(l.counter("wal.truncated_segments"), int64(removed))
	}
	return removed, nil
}

// ---- Cursor and lifecycle management ----

// SetCursor installs the table's next row index after a recovery decided
// where the log resumes (the end of replay, or the restored row count after
// a non-WAL restore). Appends continue into a fresh segment.
func (l *Log) SetCursor(table string, next int64) error {
	tl, err := l.tableLogFor(table)
	if err != nil {
		return err
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.next = next
	return nil
}

// Cursor returns the table's next row index (0 for unknown tables).
func (l *Log) Cursor(table string) int64 {
	l.mu.Lock()
	tl, ok := l.tables[table]
	l.mu.Unlock()
	if !ok {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.next
}

const quarantineMarker = "quarantined"

// Quarantine marks a table's log as no longer mirroring memory (a batch was
// rejected mid-apply, so row indexes diverged). Crash recovery of the table
// takes the disk path until a restart resets the log. The marker is a file,
// so it survives the crash it is protecting against.
func (l *Log) Quarantine(table string) error {
	tl, err := l.tableLogFor(table)
	if err != nil {
		return err
	}
	tl.mu.Lock()
	tl.quarantined = true
	tl.cond.Broadcast()
	tl.mu.Unlock()
	f, err := os.Create(filepath.Join(l.tableDir(table), quarantineMarker))
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(l.tableDir(table))
}

// Quarantined reports whether the table's log is quarantined.
func (l *Log) Quarantined(table string) bool {
	l.mu.Lock()
	if tl, ok := l.tables[table]; ok {
		l.mu.Unlock()
		tl.mu.Lock()
		defer tl.mu.Unlock()
		return tl.quarantined
	}
	l.mu.Unlock()
	_, err := os.Stat(filepath.Join(l.tableDir(table), quarantineMarker))
	return err == nil
}

// Tables lists tables with any log state, sorted.
func (l *Log) Tables() ([]string, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if st, err := l.hasTableState(filepath.Join(l.dir, e.Name())); err != nil {
			return nil, err
		} else if st {
			out = append(out, disk.DecodeTableName(e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Log) hasTableState(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if _, ok := parseSegFile(name); ok {
			return true, nil
		}
		if _, ok := parseSnapFile(name); ok {
			return true, nil
		}
		if name == watermarkFile || name == quarantineMarker {
			return true, nil
		}
	}
	return false, nil
}

// HasState reports whether any table has log or snapshot state — the signal
// Start uses to pick WAL recovery over the disk translate.
func (l *Log) HasState() bool {
	tables, err := l.Tables()
	return err == nil && len(tables) > 0
}

// ResetTable discards one table's log and snapshot state (the table was
// restored by a non-WAL path, so the old log no longer matches memory) and
// re-creates it with the cursor at next.
func (l *Log) ResetTable(table string, next int64) error {
	l.mu.Lock()
	if tl, ok := l.tables[table]; ok {
		tl.closeFile()
		delete(l.tables, table)
	}
	l.mu.Unlock()
	if err := os.RemoveAll(l.tableDir(table)); err != nil {
		return err
	}
	return l.SetCursor(table, next)
}

// Reset discards all log and snapshot state. Callers re-seed cursors with
// SetCursor afterwards.
func (l *Log) Reset() error {
	l.mu.Lock()
	for name, tl := range l.tables {
		tl.closeFile()
		delete(l.tables, name)
	}
	l.mu.Unlock()
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(l.dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

func (tl *tableLog) closeFile() {
	tl.mu.Lock()
	if tl.f != nil {
		tl.f.Sync()  //nolint:errcheck // best effort on teardown
		tl.f.Close() //nolint:errcheck
		tl.f = nil
	}
	tl.closed = true
	tl.cond.Broadcast()
	tl.mu.Unlock()
}

// Close flushes and closes every table log and stops the flusher. The Log
// is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	tls := make([]*tableLog, 0, len(l.tables))
	for _, tl := range l.tables {
		tls = append(tls, tl)
	}
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	for _, tl := range tls {
		tl.mu.Lock()
		if tl.f != nil && tl.appendSeq > tl.syncedSeq {
			tl.syncLocked() //nolint:errcheck // waiters are nacked below
		}
		tl.mu.Unlock()
		tl.closeFile()
	}
	return nil
}

// ---- Replay ----

// ReplayFrom streams the log tail of one table, in order, starting at row
// index from (records straddling it are sliced). fn receives each batch;
// returning an error aborts the replay. A torn record at a segment's tail
// is discarded (it was never acked); bad records anywhere else return
// ErrCorrupt. A log whose tail starts after from returns ErrGap.
// Returns (records applied, rows applied, next row index).
func (l *Log) ReplayFrom(table string, from int64, fn func([]rowblock.Row) error) (int, int64, int64, error) {
	dir := l.tableDir(table)
	segs, err := listSegments(dir)
	if err != nil {
		return 0, 0, from, err
	}
	pos := from
	records, rowsApplied := 0, int64(0)
	for i, sg := range segs {
		// A segment is skippable when its successor starts at or below pos:
		// every record in it is then below the watermark.
		if i+1 < len(segs) && segs[i+1].start <= pos {
			continue
		}
		if err := fault.Inject(fault.SiteWALReplay); err != nil {
			return records, rowsApplied, pos, fmt.Errorf("wal: replay %s: %w", table, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, sg.name))
		if err != nil {
			return records, rowsApplied, pos, err
		}
		for off := 0; off < len(data); {
			start, rows, used, derr := decodeRecord(data[off:])
			if derr != nil {
				// A record that runs past EOF (used == 0) or CRC-fails as the
				// file's final record is a torn tail: its fsync never
				// completed, the batch was never acked, drop it and move to
				// the next segment (the continuity check below catches any
				// real loss). A bad record with intact records after it is
				// corruption — data past it may be acked, so replay aborts.
				if errors.Is(derr, errTorn) && (used == 0 || off+used >= len(data)) {
					break
				}
				return records, rowsApplied, pos, fmt.Errorf("wal: %s %s at offset %d: %w", table, sg.name, off, ErrCorrupt)
			}
			off += used
			end := start + int64(len(rows))
			if end <= pos {
				continue
			}
			if start > pos {
				return records, rowsApplied, pos, fmt.Errorf("%w: %s needs row %d, log resumes at %d", ErrGap, table, pos, start)
			}
			if start < pos {
				rows = rows[pos-start:]
			}
			if err := fn(rows); err != nil {
				return records, rowsApplied, pos, err
			}
			pos = end
			records++
			rowsApplied += int64(len(rows))
		}
	}
	addCount(l.counter("wal.replay_rows"), rowsApplied)
	return records, rowsApplied, pos, nil
}
