// Package wal gives a leaf crash-path parity with its clean-restart path: a
// per-table write-ahead log on the ingest path plus incremental columnar
// snapshots of sealed blocks, so crash recovery is "load snapshots + replay
// the log tail" instead of the full row-format disk translate the paper
// reports costing hours (§1).
//
// Layout, per table, under the log root:
//
//	<enc(table)>/wal-<seq>-<start>.log    log segments; <start> is the global
//	                                      row index of the segment's first
//	                                      record, so truncation and replay
//	                                      never parse a segment to place it
//	<enc(table)>/snap-<start>-<count>-<maxtime>.col
//	                                      RBK2 block images of sealed blocks
//	<enc(table)>/watermark                monotone snapshot watermark W: every
//	                                      row below W is in a snapshot image
//	                                      or expired by retention
//	<enc(table)>/quarantined              marker: this table's log stopped
//	                                      mirroring memory (a batch was
//	                                      rejected mid-apply); crash recovery
//	                                      takes the disk path until the next
//	                                      restart resets the log
//
// Appends are group-committed in two stages so the caller can order the log
// and its in-memory apply under one lock without serializing on fsyncs:
// Begin writes the record to the active segment and assigns its row indexes,
// and the returned Commit's Wait blocks until a flusher fsync covers the
// record (SyncInterval cadence; <=0 fsyncs inline, driven by the waiters
// themselves). The caller only acks its client after Wait returns, so acked
// rows are always durable; a batch lost to a torn tail write was by
// construction never acked.
//
// Any write or fsync failure on the append path quarantines the table: the
// failed record's bytes may sit mid-segment and become durable on a later
// successful fsync of the same fd, so the log can never be trusted to mirror
// the table again. Quarantine is only honored once its marker file is
// durable — if the marker itself cannot be persisted the table log enters a
// failed state and every subsequent append is refused, because acking
// without either durable WAL coverage or a durable quarantine marker risks
// silent acked-row loss after a crash.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scuba/internal/disk"
	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/rowblock"
)

// Options configure a Log.
type Options struct {
	// SyncInterval is the group-commit cadence: appenders wait for the next
	// background fsync at most this far away. <=0 fsyncs on every append.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size (default 4 MB).
	// Truncation deletes whole closed segments, so smaller segments reclaim
	// space sooner at the cost of more files.
	SegmentBytes int64
	// Metrics, when non-nil, receives wal.* counters (append rows, fsyncs,
	// truncated segments, snapshot blocks, replayed rows).
	Metrics *metrics.Registry
}

// ErrClosed is returned for operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// ErrGap means the log tail does not reach back to the snapshot watermark:
// rows in between are in neither a snapshot image nor the log (the window
// between a non-WAL restore and the first snapshot pass). Recovery falls
// back to the disk translate.
var ErrGap = errors.New("wal: gap between snapshot watermark and log tail")

// Log is one leaf's write-ahead log and snapshot store.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	tables map[string]*tableLog
	closed bool

	stop chan struct{}
	done chan struct{}
}

// tableLog is one table's active segment and group-commit state.
type tableLog struct {
	dir string

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File // active segment; nil until the first append
	size int64    // bytes written to the active segment
	seq  int      // active segment sequence number
	next int64    // global row index the next append starts at

	appendSeq   int64 // records written
	syncedSeq   int64 // records durably fsynced
	dirty       bool
	quarantined bool
	// failed is set when the quarantine marker itself could not be persisted
	// (disk full, say): the quarantine exists only in memory, so a crashed
	// successor would take the WAL path and silently drop the acked tail.
	// Every append and wait is refused with this error instead.
	failed error
	closed bool
}

// Open opens (creating if needed) the log rooted at dir.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create root: %w", err)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	l := &Log{
		dir:    dir,
		opts:   opts,
		tables: make(map[string]*tableLog),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if opts.SyncInterval > 0 {
		go l.flushLoop()
	} else {
		close(l.done)
	}
	return l, nil
}

// Dir returns the log root.
func (l *Log) Dir() string { return l.dir }

func (l *Log) tableDir(table string) string {
	return filepath.Join(l.dir, disk.EncodeTableName(table))
}

func (l *Log) counter(name string) *metrics.Counter {
	if l.opts.Metrics == nil {
		return nil
	}
	return l.opts.Metrics.Counter(name)
}

func addCount(c *metrics.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// ---- Segment and snapshot file naming ----

type segFile struct {
	seq   int
	start int64
	name  string
}

func parseSegFile(name string) (segFile, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return segFile{}, false
	}
	core := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	seqStr, startStr, ok := strings.Cut(core, "-")
	if !ok {
		return segFile{}, false
	}
	seq, err1 := strconv.Atoi(seqStr)
	start, err2 := strconv.ParseInt(startStr, 10, 64)
	if err1 != nil || err2 != nil {
		return segFile{}, false
	}
	return segFile{seq: seq, start: start, name: name}, true
}

func listSegments(dir string) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []segFile
	for _, e := range entries {
		if sf, ok := parseSegFile(e.Name()); ok {
			out = append(out, sf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// syncDir fsyncs a directory so renames and newly created files in it are
// durable, not just their contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- Append path ----

// tableLogFor returns (creating if needed) the table's log state. A new
// tableLog continues after the highest existing segment; its cursor comes
// from cursors set by recovery (SetCursor) or, for a table with existing
// segments and no cursor, from scanning the newest segment's records.
func (l *Log) tableLogFor(table string) (*tableLog, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if tl, ok := l.tables[table]; ok {
		return tl, nil
	}
	dir := l.tableDir(table)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: table dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	tl := &tableLog{dir: dir}
	tl.cond = sync.NewCond(&tl.mu)
	if _, err := os.Stat(filepath.Join(dir, quarantineMarker)); err == nil {
		tl.quarantined = true
	}
	if n := len(segs); n > 0 {
		tl.seq = segs[n-1].seq
		end, err := scanSegmentEnd(filepath.Join(dir, segs[n-1].name), segs[n-1].start)
		if err != nil {
			return nil, err
		}
		tl.next = end
	}
	l.tables[table] = tl
	return tl, nil
}

// scanSegmentEnd walks a segment's records to find the row index after its
// last intact record (a torn tail is skipped, matching replay).
func scanSegmentEnd(path string, start int64) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	end := start
	for off := 0; off < len(data); {
		s, rows, used, err := decodeRecord(data[off:])
		if err != nil {
			break // torn or corrupt tail: appends continue after the last good record
		}
		end = s + int64(len(rows))
		off += used
	}
	return end, nil
}

// Commit is the durability handle for one record Begin reserved: the record
// is in the active segment and the cursor advanced; Wait blocks until an
// fsync covers it.
type Commit struct {
	log *Log
	tl  *tableLog
	seq int64
}

// Append logs one batch and returns once the record is durable — Begin plus
// Wait, for callers with no apply step to order in between.
func (l *Log) Append(table string, rows []rowblock.Row) error {
	c, err := l.Begin(table, rows)
	if err != nil || c == nil {
		return err
	}
	return c.Wait()
}

// Begin writes one batch's record into the table's active segment at the
// log cursor — which mirrors the table's cumulative accepted-row count —
// and returns a Commit to Wait on for durability. The caller must apply the
// batch to the table in the same order it calls Begin (hold a per-table
// lock across both), or record row indexes stop matching the table's row
// order and crash replay splices batches wrongly around the snapshot
// watermark. A nil Commit with nil error means the batch is not covered:
// empty, or the table is quarantined (its log already stopped mirroring
// memory; crash recovery takes the disk path, so there is nothing to wait
// for).
func (l *Log) Begin(table string, rows []rowblock.Row) (*Commit, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	if err := fault.Inject(fault.SiteWALAppend); err != nil {
		return nil, fmt.Errorf("wal: append %s: %w", table, err)
	}
	tl, err := l.tableLogFor(table)
	if err != nil {
		return nil, err
	}
	seq, err := tl.begin(rows, l.opts)
	if err != nil {
		return nil, fmt.Errorf("wal: append %s: %w", table, err)
	}
	if seq == 0 {
		return nil, nil // quarantined: dropped, caller acks under degraded durability
	}
	addCount(l.counter("wal.append_rows"), int64(len(rows)))
	addCount(l.counter("wal.append_records"), 1)
	return &Commit{log: l, tl: tl, seq: seq}, nil
}

// begin reserves and writes one record, returning its commit sequence (0
// when the quarantined table dropped it).
func (tl *tableLog) begin(rows []rowblock.Row, opts Options) (int64, error) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if tl.closed {
		return 0, ErrClosed
	}
	if tl.failed != nil {
		return 0, tl.failed
	}
	if tl.quarantined {
		return 0, nil
	}
	if tl.f == nil || tl.size >= opts.SegmentBytes {
		if err := tl.rotateLocked(); err != nil {
			return 0, err
		}
	}
	rec := appendRecord(nil, tl.next, rows)
	// Chaos runs corrupt the framed record in flight; replay must refuse it.
	fault.CorruptBytes(fault.SiteWALAppend, rec)
	if _, err := tl.f.Write(rec); err != nil {
		// A short write may have landed part of the record; nothing written
		// after it could be replayed safely, so the log is done mirroring
		// memory.
		if qerr := tl.quarantineLocked(); qerr != nil {
			err = errors.Join(err, qerr)
		}
		return 0, err
	}
	tl.size += int64(len(rec))
	tl.next += int64(len(rows))
	tl.appendSeq++
	tl.dirty = true
	return tl.appendSeq, nil
}

// Wait blocks until the reserved record is durable. A nil return means the
// caller may ack: either the fsync covering the record completed, or the
// table was quarantined with a durable marker — WAL coverage is waived and
// the rows fall back to the pre-WAL durability model (disk write-behind),
// exactly like every later append to a quarantined table. A non-nil return
// (log closed, or quarantine marker unpersistable) means the batch must be
// nacked.
func (c *Commit) Wait() error {
	tl, opts := c.tl, c.log.opts
	tl.mu.Lock()
	defer tl.mu.Unlock()
	for tl.syncedSeq < c.seq {
		if tl.failed != nil {
			return tl.failed
		}
		if tl.quarantined {
			return nil
		}
		if tl.closed {
			return ErrClosed
		}
		if opts.SyncInterval <= 0 {
			// Inline commit: the waiter drives the fsync itself (concurrent
			// waiters still share it — whoever gets the lock first syncs for
			// all). A failure quarantines or fails the table; the loop
			// re-checks both.
			tl.syncLocked() //nolint:errcheck
			continue
		}
		tl.cond.Wait()
	}
	return nil
}

// syncLocked fsyncs the active segment; on success every written record is
// durable. On failure the table is quarantined: the un-synced record bytes
// stay mid-segment and a later successful fsync of the same fd would make
// them durable anyway, misaligned with what the caller was told — so the
// log must never be trusted again. Called with tl.mu held.
func (tl *tableLog) syncLocked() error {
	err := fault.Inject(fault.SiteWALSync)
	if err == nil && tl.f != nil {
		err = tl.f.Sync()
	}
	if err != nil {
		if qerr := tl.quarantineLocked(); qerr != nil {
			err = errors.Join(err, qerr)
		}
		return err
	}
	tl.syncedSeq = tl.appendSeq
	tl.dirty = false
	return nil
}

// quarantineLocked marks the table's log as no longer mirroring memory and
// persists the marker. It wakes group-commit waiters (Wait acks them under
// the degraded model once the marker is durable). If the marker cannot be
// persisted, the tableLog enters the failed state — returned here and by
// every later append — because an in-memory-only quarantine would let a
// post-crash recovery take the WAL path and silently lose the acked tail.
// Called with tl.mu held.
func (tl *tableLog) quarantineLocked() error {
	if !tl.quarantined {
		tl.quarantined = true
		if err := persistQuarantine(tl.dir); err != nil {
			tl.failed = fmt.Errorf("wal: quarantine marker: %w", err)
		}
	}
	tl.cond.Broadcast()
	return tl.failed
}

// rotateLocked fsyncs and closes the active segment (closed segments are
// always durable) and opens the next one, named by its first row index.
func (tl *tableLog) rotateLocked() error {
	if tl.f != nil {
		if err := tl.syncLocked(); err != nil {
			return err
		}
		if err := tl.f.Close(); err != nil {
			return err
		}
		tl.f = nil
		tl.cond.Broadcast() // rotation synced; release any group-commit waiters
	}
	tl.seq++
	name := fmt.Sprintf("wal-%08d-%d.log", tl.seq, tl.next)
	f, err := os.OpenFile(filepath.Join(tl.dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	tl.f = f
	tl.size = 0
	return syncDir(tl.dir)
}

// flushLoop is the group-commit flusher: every SyncInterval it fsyncs each
// dirty table's active segment and wakes that table's waiting appenders.
func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.flushAll()
		}
	}
}

func (l *Log) flushAll() {
	l.mu.Lock()
	tls := make([]*tableLog, 0, len(l.tables))
	for _, tl := range l.tables {
		tls = append(tls, tl)
	}
	l.mu.Unlock()
	for _, tl := range tls {
		tl.mu.Lock()
		if tl.dirty && tl.appendSeq > tl.syncedSeq && !tl.closed && !tl.quarantined && tl.failed == nil {
			// A failed sync quarantines the table inside syncLocked, which
			// also wakes the waiters.
			if err := tl.syncLocked(); err == nil {
				addCount(l.counter("wal.fsyncs"), 1)
			}
			tl.cond.Broadcast()
		}
		tl.mu.Unlock()
	}
}

// ---- Truncation ----

// Truncate deletes closed segments whose every record is below the snapshot
// watermark w: a segment is disposable once its successor's first row index
// is <= w. The active (newest) segment is never deleted. Returns the number
// of segments removed.
func (l *Log) Truncate(table string, w int64) (int, error) {
	if err := fault.Inject(fault.SiteWALTruncate); err != nil {
		return 0, fmt.Errorf("wal: truncate %s: %w", table, err)
	}
	dir := l.tableDir(table)
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].start > w {
			break
		}
		if err := os.Remove(filepath.Join(dir, segs[i].name)); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		addCount(l.counter("wal.truncated_segments"), int64(removed))
	}
	return removed, nil
}

// ---- Cursor and lifecycle management ----

// SetCursor installs the table's next row index after a recovery decided
// where the log resumes (the end of replay, or the restored row count after
// a non-WAL restore). Appends continue into a fresh segment.
func (l *Log) SetCursor(table string, next int64) error {
	tl, err := l.tableLogFor(table)
	if err != nil {
		return err
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.next = next
	return nil
}

// Cursor returns the table's next row index (0 for unknown tables).
func (l *Log) Cursor(table string) int64 {
	l.mu.Lock()
	tl, ok := l.tables[table]
	l.mu.Unlock()
	if !ok {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.next
}

const quarantineMarker = "quarantined"

// Quarantine marks a table's log as no longer mirroring memory (a batch was
// rejected mid-apply, so row indexes diverged). Crash recovery of the table
// takes the disk path until a restart resets the log. The marker is a file,
// so it survives the crash it is protecting against. A non-nil return means
// the marker could not be persisted: the caller must nack (and the log
// refuses all further appends to the table), because an in-memory-only
// quarantine would not survive a crash and recovery would take the WAL path
// missing the acked tail.
func (l *Log) Quarantine(table string) error {
	tl, err := l.tableLogFor(table)
	if err != nil {
		return err
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.quarantineLocked()
}

// persistQuarantine durably creates the quarantine marker file.
func persistQuarantine(dir string) error {
	f, err := os.Create(filepath.Join(dir, quarantineMarker))
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(dir)
}

// Quarantined reports whether the table's log is quarantined.
func (l *Log) Quarantined(table string) bool {
	l.mu.Lock()
	if tl, ok := l.tables[table]; ok {
		l.mu.Unlock()
		tl.mu.Lock()
		defer tl.mu.Unlock()
		return tl.quarantined
	}
	l.mu.Unlock()
	_, err := os.Stat(filepath.Join(l.tableDir(table), quarantineMarker))
	return err == nil
}

// Tables lists tables with any log state, sorted.
func (l *Log) Tables() ([]string, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if st, err := l.hasTableState(filepath.Join(l.dir, e.Name())); err != nil {
			return nil, err
		} else if st {
			out = append(out, disk.DecodeTableName(e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Log) hasTableState(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if _, ok := parseSegFile(name); ok {
			return true, nil
		}
		if _, ok := parseSnapFile(name); ok {
			return true, nil
		}
		if name == watermarkFile || name == quarantineMarker {
			return true, nil
		}
	}
	return false, nil
}

// HasState reports whether any table has log or snapshot state — the signal
// Start uses to pick WAL recovery over the disk translate.
func (l *Log) HasState() bool {
	tables, err := l.Tables()
	return err == nil && len(tables) > 0
}

// ResetTable discards one table's log and snapshot state (the table was
// restored by a non-WAL path, so the old log no longer matches memory) and
// re-creates it with the cursor at next.
func (l *Log) ResetTable(table string, next int64) error {
	l.mu.Lock()
	if tl, ok := l.tables[table]; ok {
		tl.closeFile()
		delete(l.tables, table)
	}
	l.mu.Unlock()
	if err := os.RemoveAll(l.tableDir(table)); err != nil {
		return err
	}
	return l.SetCursor(table, next)
}

// Reset discards all log and snapshot state. Callers re-seed cursors with
// SetCursor afterwards.
func (l *Log) Reset() error {
	l.mu.Lock()
	for name, tl := range l.tables {
		tl.closeFile()
		delete(l.tables, name)
	}
	l.mu.Unlock()
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(l.dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

func (tl *tableLog) closeFile() {
	tl.mu.Lock()
	if tl.f != nil {
		tl.f.Sync()  //nolint:errcheck // best effort on teardown
		tl.f.Close() //nolint:errcheck
		tl.f = nil
	}
	tl.closed = true
	tl.cond.Broadcast()
	tl.mu.Unlock()
}

// Close flushes and closes every table log and stops the flusher. The Log
// is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	tls := make([]*tableLog, 0, len(l.tables))
	for _, tl := range l.tables {
		tls = append(tls, tl)
	}
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	for _, tl := range tls {
		tl.mu.Lock()
		if tl.f != nil && tl.appendSeq > tl.syncedSeq {
			tl.syncLocked() //nolint:errcheck // waiters are nacked below
		}
		tl.mu.Unlock()
		tl.closeFile()
	}
	return nil
}

// ---- Replay ----

// ReplayFrom streams the log tail of one table, in order, starting at row
// index from (records straddling it are sliced). fn receives each batch;
// returning an error aborts the replay. A torn record at a segment's tail
// is discarded (it was never acked); bad records anywhere else return
// ErrCorrupt. A log whose tail starts after from returns ErrGap.
// Returns (records applied, rows applied, next row index).
func (l *Log) ReplayFrom(table string, from int64, fn func([]rowblock.Row) error) (int, int64, int64, error) {
	dir := l.tableDir(table)
	segs, err := listSegments(dir)
	if err != nil {
		return 0, 0, from, err
	}
	pos := from
	records, rowsApplied := 0, int64(0)
	for i, sg := range segs {
		// A segment is skippable when its successor starts at or below pos:
		// every record in it is then below the watermark.
		if i+1 < len(segs) && segs[i+1].start <= pos {
			continue
		}
		if err := fault.Inject(fault.SiteWALReplay); err != nil {
			return records, rowsApplied, pos, fmt.Errorf("wal: replay %s: %w", table, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, sg.name))
		if err != nil {
			return records, rowsApplied, pos, err
		}
		for off := 0; off < len(data); {
			start, rows, used, derr := decodeRecord(data[off:])
			if derr != nil {
				// A record that runs past EOF (used == 0) or CRC-fails as the
				// file's final record is a torn tail: its fsync never
				// completed, the batch was never acked, drop it and move to
				// the next segment (the continuity check below catches any
				// real loss). A bad record with intact records after it is
				// corruption — data past it may be acked, so replay aborts.
				if errors.Is(derr, errTorn) && (used == 0 || off+used >= len(data)) {
					break
				}
				return records, rowsApplied, pos, fmt.Errorf("wal: %s %s at offset %d: %w", table, sg.name, off, ErrCorrupt)
			}
			off += used
			end := start + int64(len(rows))
			if end <= pos {
				continue
			}
			if start > pos {
				return records, rowsApplied, pos, fmt.Errorf("%w: %s needs row %d, log resumes at %d", ErrGap, table, pos, start)
			}
			if start < pos {
				rows = rows[pos-start:]
			}
			if err := fn(rows); err != nil {
				return records, rowsApplied, pos, err
			}
			pos = end
			records++
			rowsApplied += int64(len(rows))
		}
	}
	addCount(l.counter("wal.replay_rows"), rowsApplied)
	return records, rowsApplied, pos, nil
}
