// Incremental columnar snapshots: each newly sealed row block is written
// once as an RBK2 block image named by its global row range, and a persisted
// watermark W records how far snapshots reach. Crash recovery loads images
// up to W and replays the log from W, so the expensive row-format disk
// translate only runs when the WAL itself cannot cover the gap.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"scuba/internal/fault"
	"scuba/internal/rowblock"
)

type snapFile struct {
	start   int64
	count   int
	maxTime int64
	name    string
}

func (sf snapFile) end() int64 { return sf.start + int64(sf.count) }

func parseSnapFile(name string) (snapFile, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".col") {
		return snapFile{}, false
	}
	parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".col"), "-")
	if len(parts) != 3 {
		return snapFile{}, false
	}
	start, err1 := strconv.ParseInt(parts[0], 10, 64)
	count, err2 := strconv.Atoi(parts[1])
	maxTime, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return snapFile{}, false
	}
	return snapFile{start: start, count: count, maxTime: maxTime, name: name}, true
}

func listSnapshots(dir string) ([]snapFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []snapFile
	for _, e := range entries {
		if sf, ok := parseSnapFile(e.Name()); ok {
			out = append(out, sf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out, nil
}

// WriteSnapshot persists one sealed block as an RBK2 image covering global
// rows [start, start+rb.Rows()). Fsynced temp-file + rename + dir sync, so
// a crash mid-write leaves either no image or a complete one.
func (l *Log) WriteSnapshot(table string, rb *rowblock.RowBlock, start int64) error {
	if err := fault.Inject(fault.SiteSnapWrite); err != nil {
		return fmt.Errorf("wal: snapshot %s: %w", table, err)
	}
	dir := l.tableDir(table)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	img := rb.AppendImage(nil)
	// Chaos runs corrupt the image in flight; recovery must fall back.
	fault.CorruptBytes(fault.SiteSnapWrite, img)
	name := fmt.Sprintf("snap-%016d-%d-%d.col", start, rb.Rows(), rb.Header().MaxTime)
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after a successful rename
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	addCount(l.counter("wal.snapshot_blocks"), 1)
	return nil
}

// LoadSnapshots streams one table's snapshot images in row order and
// returns the watermark W the log replays from. The images must tile
// contiguously up to W — an expired prefix is fine (retention deleted it
// along with the heap blocks), but a hole below W means rows exist in
// neither snapshots nor the log, so recovery must take the disk path.
func (l *Log) LoadSnapshots(table string, fn func(rb *rowblock.RowBlock, start int64) error) (int64, error) {
	dir := l.tableDir(table)
	snaps, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	w, err := l.loadWatermark(table)
	if err != nil {
		return 0, err
	}
	var pos int64 = -1
	for _, sf := range snaps {
		if pos >= 0 && sf.start != pos {
			return 0, fmt.Errorf("wal: %s snapshots not contiguous: have rows up to %d, next image starts at %d", table, pos, sf.start)
		}
		data, err := os.ReadFile(filepath.Join(dir, sf.name))
		if err != nil {
			return 0, err
		}
		// Fresh ReadFile slices are never reused: the block may alias them.
		rb, _, err := rowblock.DecodeImage(data, false)
		if err != nil {
			return 0, fmt.Errorf("wal: %s snapshot %s: %w", table, sf.name, err)
		}
		if rb.Rows() != sf.count {
			return 0, fmt.Errorf("wal: %s snapshot %s: %d rows, name says %d", table, sf.name, rb.Rows(), sf.count)
		}
		if err := fn(rb, sf.start); err != nil {
			return 0, err
		}
		pos = sf.end()
	}
	if n := len(snaps); n > 0 {
		if end := snaps[n-1].end(); end > w {
			// Images past the persisted watermark: the crash hit between
			// WriteSnapshot and SaveWatermark. The images are still valid.
			w = end
		} else if end < w {
			return 0, fmt.Errorf("wal: %s watermark %d past last snapshot row %d", table, w, end)
		}
	}
	// With zero images, a positive W means retention expired them all: the
	// rows below W are legitimately gone, and the log replays from W.
	return w, nil
}

const watermarkFile = "watermark"

const watermarkMagic uint32 = 0x314B4D57 // "WMK1"

// SaveWatermark durably records that every row below w is snapshotted (or
// expired). Monotone: saving a smaller w than the file already holds is a
// no-op, so an old in-flight snapshot pass can never roll coverage back.
func (l *Log) SaveWatermark(table string, w int64) error {
	cur, err := l.loadWatermark(table)
	if err != nil {
		return err
	}
	if w <= cur {
		return nil
	}
	dir := l.tableDir(table)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := binary.LittleEndian.AppendUint32(nil, watermarkMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	tmp, err := os.CreateTemp(dir, ".tmp-wmk-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, watermarkFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadWatermark reads the persisted watermark; missing or damaged files
// load as 0 (the rename is atomic, so damage means pre-WAL state, and 0 is
// always safe — it only forces a longer replay or the disk fallback).
func (l *Log) loadWatermark(table string) (int64, error) {
	data, err := os.ReadFile(filepath.Join(l.tableDir(table), watermarkFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(data) != 16 || binary.LittleEndian.Uint32(data) != watermarkMagic {
		return 0, nil
	}
	if crc32.Checksum(data[:12], crcTable) != binary.LittleEndian.Uint32(data[12:]) {
		return 0, nil
	}
	return int64(binary.LittleEndian.Uint64(data[4:])), nil
}

// ExpireSnapshots deletes snapshot images whose every row is older than
// cutoff, mirroring heap-block retention. Only a prefix may be deleted —
// images must stay contiguous below the watermark — so expiry stops at the
// first image that is still fresh, exactly like Table.Expire.
func (l *Log) ExpireSnapshots(table string, cutoff int64) (int, error) {
	dir := l.tableDir(table)
	snaps, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, sf := range snaps {
		if sf.maxTime >= cutoff {
			break
		}
		if err := os.Remove(filepath.Join(dir, sf.name)); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
