package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/rowblock"
)

func testRows(start, n int) []rowblock.Row {
	rows := make([]rowblock.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = rowblock.Row{
			Time: int64(1000 + start + i),
			Cols: map[string]rowblock.Value{
				"seq":     rowblock.Int64Value(int64(start + i)),
				"service": rowblock.StringValue(fmt.Sprintf("svc-%d", (start+i)%3)),
				"ratio":   rowblock.Float64Value(float64(start+i) / 7),
				"tags":    rowblock.SetValue("a", fmt.Sprintf("t%d", (start+i)%5)),
			},
		}
	}
	return rows
}

func openTest(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collectReplay(t *testing.T, l *Log, table string, from int64) ([]rowblock.Row, int64) {
	t.Helper()
	var got []rowblock.Row
	_, _, next, err := l.ReplayFrom(table, from, func(rows []rowblock.Row) error {
		got = append(got, rows...)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayFrom: %v", err)
	}
	return got, next
}

func TestRecordRoundTrip(t *testing.T) {
	rows := testRows(0, 17)
	rec := appendRecord(nil, 42, rows)
	start, got, used, err := decodeRecord(rec)
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	if start != 42 || used != len(rec) {
		t.Fatalf("start=%d used=%d want 42, %d", start, used, len(rec))
	}
	if !reflect.DeepEqual(rows, got) {
		t.Fatalf("rows differ after round trip")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l := openTest(t, Options{}) // SyncInterval 0: fsync inline
	for i := 0; i < 5; i++ {
		if err := l.Append("events", testRows(i*10, 10)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, next := collectReplay(t, l, "events", 0)
	if want := testRows(0, 50); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay differs: got %d rows", len(got))
	}
	if next != 50 {
		t.Fatalf("next=%d want 50", next)
	}
	// Replay from mid-record slices the straddling batch.
	got, next = collectReplay(t, l, "events", 15)
	if want := testRows(15, 35); !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-record replay differs: got %d rows", len(got))
	}
	if next != 50 {
		t.Fatalf("next=%d want 50", next)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	l := openTest(t, Options{SyncInterval: time.Millisecond, Metrics: metrics.NewRegistry()})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := l.Append("events", testRows(0, 3)); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Append: %v", err)
		}
	}
	got, _ := collectReplay(t, l, "events", 0)
	if len(got) != 8*5*3 {
		t.Fatalf("replayed %d rows, want %d", len(got), 8*5*3)
	}
	if v := l.opts.Metrics.Counter("wal.append_rows").Value(); v != 8*5*3 {
		t.Fatalf("wal.append_rows=%d want %d", v, 8*5*3)
	}
	if l.opts.Metrics.Counter("wal.fsyncs").Value() == 0 {
		t.Fatal("no group-commit fsyncs recorded")
	}
}

func TestTornTailDiscardedWhole(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("events", testRows(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("events", testRows(10, 10)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	segs, err := listSegments(filepath.Join(dir, "events"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(dir, "events", segs[0].name)
	data, _ := os.ReadFile(path)
	_, _, rec1, err := decodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	rec2 := len(data) - rec1 // second record's size
	for _, cut := range []int{1, recordOverhead / 2, 12, rec2 / 2, rec2 - 1} {
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, next := collectReplay(t, l2, "events", 0)
		// The torn second batch vanishes whole; the first is intact.
		if want := testRows(0, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: replayed %d rows, want first batch only", cut, len(got))
		}
		if next != 10 {
			t.Fatalf("cut %d: next=%d want 10", cut, next)
		}
		// New appends continue after the last intact record.
		if err := l2.Append("events", testRows(10, 4)); err != nil {
			t.Fatal(err)
		}
		if got, _ := collectReplay(t, l2, "events", 0); len(got) != 14 {
			t.Fatalf("cut %d: after re-append replayed %d rows, want 14", cut, len(got))
		}
		l2.Close()
		// Restore the original single-segment state for the next cut.
		now, _ := listSegments(filepath.Join(dir, "events"))
		for _, sf := range now {
			if sf.name != segs[0].name {
				os.Remove(filepath.Join(dir, "events", sf.name))
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMidLogCorruptionAborts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append("events", testRows(i*10, 10)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(filepath.Join(dir, "events"))
	path := filepath.Join(dir, "events", segs[0].name)
	data, _ := os.ReadFile(path)
	data[recordOverhead+5] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, _, _, err = l2.ReplayFrom("events", 0, func([]rowblock.Row) error { return nil })
	if err == nil {
		t.Fatal("mid-log corruption not detected")
	}
}

func TestRotationAndTruncate(t *testing.T) {
	l := openTest(t, Options{SegmentBytes: 1024, Metrics: metrics.NewRegistry()})
	for i := 0; i < 20; i++ {
		if err := l.Append("events", testRows(i*10, 10)); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(l.Dir(), "events")
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	// Replay across segment boundaries is seamless.
	got, next := collectReplay(t, l, "events", 0)
	if len(got) != 200 || next != 200 {
		t.Fatalf("replayed %d rows next=%d", len(got), next)
	}
	// Truncating at a mid-log watermark removes only fully covered closed
	// segments and replay from that watermark still works.
	w := segs[2].start
	removed, err := l.Truncate("events", w)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d segments, want 2", removed)
	}
	got, _ = collectReplay(t, l, "events", w)
	if want := testRows(int(w), int(200-w)); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-truncate replay differs")
	}
	// The active segment survives even a max watermark.
	if _, err := l.Truncate("events", 1<<40); err != nil {
		t.Fatal(err)
	}
	if segs, _ = listSegments(dir); len(segs) == 0 {
		t.Fatal("active segment deleted")
	}
	// Replay below the truncated tail now reports a gap.
	_, _, _, err = l.ReplayFrom("events", 0, func([]rowblock.Row) error { return nil })
	if !errors.Is(err, ErrGap) {
		t.Fatalf("want ErrGap, got %v", err)
	}
}

func TestSnapshotRoundTripAndWatermark(t *testing.T) {
	l := openTest(t, Options{})
	b := rowblock.NewBuilder(1)
	for _, r := range testRows(0, 100) {
		if err := b.AddRow(r); err != nil {
			t.Fatal(err)
		}
	}
	rb, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot("events", rb, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.SaveWatermark("events", 100); err != nil {
		t.Fatal(err)
	}
	var loaded []*rowblock.RowBlock
	w, err := l.LoadSnapshots("events", func(rb *rowblock.RowBlock, start int64) error {
		if start != 0 {
			t.Fatalf("start=%d", start)
		}
		loaded = append(loaded, rb)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w != 100 || len(loaded) != 1 || loaded[0].Rows() != 100 {
		t.Fatalf("w=%d blocks=%d", w, len(loaded))
	}
	// Watermark is monotone: an older pass saving less is a no-op.
	if err := l.SaveWatermark("events", 40); err != nil {
		t.Fatal(err)
	}
	if w, _ := l.loadWatermark("events"); w != 100 {
		t.Fatalf("watermark regressed to %d", w)
	}
	// Expiring every snapshot keeps W: those rows are legitimately gone.
	if n, err := l.ExpireSnapshots("events", 1<<40); err != nil || n != 1 {
		t.Fatalf("expire: n=%d err=%v", n, err)
	}
	w, err = l.LoadSnapshots("events", func(*rowblock.RowBlock, int64) error {
		t.Fatal("no images should remain")
		return nil
	})
	if err != nil || w != 100 {
		t.Fatalf("w=%d err=%v", w, err)
	}
}

func TestLoadSnapshotsRejectsHoles(t *testing.T) {
	l := openTest(t, Options{})
	mkBlock := func(n int, at int) *rowblock.RowBlock {
		b := rowblock.NewBuilder(1)
		for _, r := range testRows(at, n) {
			if err := b.AddRow(r); err != nil {
				t.Fatal(err)
			}
		}
		rb, err := b.Seal()
		if err != nil {
			t.Fatal(err)
		}
		return rb
	}
	if err := l.WriteSnapshot("events", mkBlock(50, 0), 0); err != nil {
		t.Fatal(err)
	}
	// Rows [50,70) never snapshotted before the next image.
	if err := l.WriteSnapshot("events", mkBlock(30, 70), 70); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadSnapshots("events", func(*rowblock.RowBlock, int64) error { return nil }); err == nil {
		t.Fatal("hole between images not detected")
	}
}

func TestQuarantineSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("events", testRows(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Quarantine("events"); err != nil {
		t.Fatal(err)
	}
	// Further appends are dropped silently.
	if err := l.Append("events", testRows(5, 5)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !l2.Quarantined("events") {
		t.Fatal("quarantine marker lost across reopen")
	}
	// ResetTable clears it.
	if err := l2.ResetTable("events", 0); err != nil {
		t.Fatal(err)
	}
	if l2.Quarantined("events") {
		t.Fatal("quarantine survived reset")
	}
}

func TestCursorContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("events", testRows(0, 25)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if c := l2.Cursor("events"); c != 0 {
		t.Fatalf("cursor before first touch = %d", c)
	}
	if err := l2.Append("events", testRows(25, 5)); err != nil {
		t.Fatal(err)
	}
	got, next := collectReplay(t, l2, "events", 0)
	if len(got) != 30 || next != 30 {
		t.Fatalf("replayed %d rows next=%d, append did not continue cursor", len(got), next)
	}
	tables, err := l2.Tables()
	if err != nil || len(tables) != 1 || tables[0] != "events" {
		t.Fatalf("Tables=%v err=%v", tables, err)
	}
	if !l2.HasState() {
		t.Fatal("HasState false with segments on disk")
	}
}

// TestSyncFailureQuarantines: a failed fsync leaves un-synced record bytes
// mid-segment with the cursor already advanced; a later successful fsync
// would make them durable and break the cursor==row-count invariant. The
// log must durably quarantine the table instead, and the batch is still
// acked — WAL coverage is waived, same as appends to an already-quarantined
// table.
func TestSyncFailureQuarantines(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("events", testRows(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := fault.ArmSpec("wal.sync=error;count=1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("events", testRows(5, 5)); err != nil {
		t.Fatalf("append nacked on sync failure: %v", err)
	}
	fault.Reset()
	if !l.Quarantined("events") {
		t.Fatal("sync failure did not quarantine the table")
	}
	if _, err := os.Stat(filepath.Join(dir, "events", "quarantined")); err != nil {
		t.Fatalf("quarantine marker not persisted: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !l2.Quarantined("events") {
		t.Fatal("quarantine lost across reopen")
	}
}

// TestQuarantineMarkerFailureNacks: if the quarantine marker itself cannot
// be persisted, appends must nack — acking without durable WAL coverage
// AND without a durable marker would silently lose the acked tail after a
// crash (recovery would trust the stale log).
func TestQuarantineMarkerFailureNacks(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append("events", testRows(0, 5)); err != nil {
		t.Fatal(err)
	}
	// Destroy the table directory so the marker cannot be created.
	if err := os.RemoveAll(filepath.Join(dir, "events")); err != nil {
		t.Fatal(err)
	}
	if err := l.Quarantine("events"); err == nil {
		t.Fatal("Quarantine reported success with the marker unpersisted")
	}
	if err := l.Append("events", testRows(5, 5)); err == nil {
		t.Fatal("append acked after the quarantine marker failed to persist")
	}
}

func FuzzRecordDecode(f *testing.F) {
	f.Add(appendRecord(nil, 0, testRows(0, 3)))
	f.Add(appendRecord(nil, 1<<40, nil))
	f.Add([]byte("WAL1garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		start, rows, used, err := decodeRecord(data)
		if err != nil {
			return
		}
		if used > len(data) || used < recordOverhead {
			t.Fatalf("used=%d len=%d", used, len(data))
		}
		// Whatever decodes must survive a re-encode/decode cycle losslessly
		// (byte-identity is too strong: a forged payload may use non-minimal
		// varints that canonicalize on re-encode).
		re := appendRecord(nil, start, rows)
		start2, rows2, used2, err := decodeRecord(re)
		if err != nil || start2 != start || used2 != len(re) {
			t.Fatalf("re-encoded record fails decode: %v", err)
		}
		if !reflect.DeepEqual(rows, rows2) {
			t.Fatalf("rows differ after re-encode cycle")
		}
	})
}
