package codec

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitPackRoundTrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{0, 0, 0},
		{1},
		{1, 2, 3, 4, 5, 6, 7},
		{255, 256, 65535, 65536},
		{math.MaxUint64},
		{math.MaxUint64, 0, 1},
	}
	for _, vals := range cases {
		enc := EncodeBitPackU64(nil, vals)
		got, err := DecodeBitPackU64(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(got) == 0 && len(vals) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("round trip %v -> %v", vals, got)
		}
	}
}

func TestBitPackWidth(t *testing.T) {
	// 1000 values < 8 should pack at 3 bits each: ~375 bytes + header.
	vals := make([]uint64, 1000)
	for i := range vals {
		vals[i] = uint64(i % 8)
	}
	enc := EncodeBitPackU64(nil, vals)
	if len(enc) > 400 {
		t.Errorf("3-bit packing produced %d bytes for 1000 values", len(enc))
	}
}

func TestBitPackZeroWidth(t *testing.T) {
	vals := make([]uint64, 100000)
	enc := EncodeBitPackU64(nil, vals)
	if len(enc) > 8 {
		t.Errorf("all-zero column should be ~empty, got %d bytes", len(enc))
	}
	got, err := DecodeBitPackU64(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values, want %d", len(got), len(vals))
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("value %d = %d, want 0", i, v)
		}
	}
}

func TestBitPackProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		enc := EncodeBitPackU64(nil, vals)
		got, err := DecodeBitPackU64(enc)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitPackCorruption(t *testing.T) {
	enc := EncodeBitPackU64(nil, []uint64{1, 2, 3, 4, 5})
	if _, err := DecodeBitPackU64(enc[:len(enc)-2]); err == nil {
		t.Error("truncated packed bytes decoded without error")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = byte(MethodRaw)
	if _, err := DecodeBitPackU64(bad); err == nil {
		t.Error("wrong method byte decoded without error")
	}
	// Absurd bit width.
	bad2 := append([]byte(nil), enc...)
	// byte layout: [method][count varint(=5, 1 byte)][width]
	bad2[2] = 65
	if _, err := DecodeBitPackU64(bad2); err == nil {
		t.Error("bit width 65 decoded without error")
	}
}

func TestDeltaBPRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{42},
		{-42},
		{1, 2, 3},
		{1000, 999, 998},
		{0, math.MaxInt64, math.MinInt64, 17},
	}
	for _, vals := range cases {
		enc := EncodeDeltaBPI64(nil, vals)
		got, err := DecodeDeltaBPI64(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(got) == 0 && len(vals) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("round trip %v -> %v", vals, got)
		}
	}
}

func TestDeltaBPCompressesTimestamps(t *testing.T) {
	vals := make([]int64, 65536)
	ts := int64(1700000000)
	for i := range vals {
		ts += int64(i % 2)
		vals[i] = ts
	}
	enc := EncodeDeltaBPI64(nil, vals)
	// Deltas are 0 or +1, zigzag {0,2}: 2-bit packing = 16 KiB versus
	// 512 KiB raw, a 32x reduction before the lz4 stage.
	if len(enc) > 17*1024 {
		t.Errorf("timestamp column packed to %d bytes, want <=17KiB", len(enc))
	}
}

func TestDeltaBPProperty(t *testing.T) {
	f := func(vals []int64) bool {
		// Skip inputs whose deltas overflow int64; Scuba timestamps never do,
		// and overflow wraps identically on decode anyway, but DeepEqual on
		// the reconstructed prefix is the contract we keep.
		enc := EncodeDeltaBPI64(nil, vals)
		got, err := DecodeDeltaBPI64(enc)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitWidth(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, math.MaxUint64: 64}
	for v, want := range cases {
		if got := BitWidth(v); got != want {
			t.Errorf("BitWidth(%d) = %d, want %d", v, got, want)
		}
	}
}
