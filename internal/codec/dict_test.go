package codec

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDictInterning(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	b := d.ID("beta")
	a2 := d.ID("alpha")
	if a != a2 {
		t.Errorf("re-interning alpha gave %d, want %d", a2, a)
	}
	if a == b {
		t.Error("distinct strings share an ID")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictCanonicalize(t *testing.T) {
	d := NewDict()
	ids := []uint32{d.ID("zebra"), d.ID("apple"), d.ID("mango")}
	remap := d.Canonicalize()
	items := d.Items()
	if !reflect.DeepEqual(items, []string{"apple", "mango", "zebra"}) {
		t.Fatalf("canonical items = %v", items)
	}
	// Old IDs remapped must point at the same strings.
	originals := []string{"zebra", "apple", "mango"}
	for i, old := range ids {
		if items[remap[old]] != originals[i] {
			t.Errorf("remap[%d] -> %q, want %q", old, items[remap[old]], originals[i])
		}
	}
	// Interning after canonicalization returns the new IDs.
	if d.ID("apple") != 0 || d.ID("zebra") != 2 {
		t.Error("post-canonicalize interning returns stale IDs")
	}
}

func TestDictSerializeRoundTrip(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"one"},
		{"a", "b", "c"},
		{"with\x00nul", "unicodeé", "long " + string(make([]byte, 300))},
	}
	for _, items := range cases {
		enc := EncodeDict(nil, items)
		got, err := DecodeDict(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", items, err)
		}
		if len(got) == 0 && len(items) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, items) {
			t.Errorf("round trip %q -> %q", items, got)
		}
	}
}

func TestDictSerializeProperty(t *testing.T) {
	f := func(items []string) bool {
		enc := EncodeDict(nil, items)
		got, err := DecodeDict(enc)
		if err != nil {
			return false
		}
		if len(items) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDictDecodeCorrupt(t *testing.T) {
	enc := EncodeDict(nil, []string{"hello", "world"})
	if _, err := DecodeDict(enc[:len(enc)-3]); err == nil {
		t.Error("truncated dictionary decoded without error")
	}
	if _, err := DecodeDict([]byte{byte(MethodRaw)}); err == nil {
		t.Error("wrong method byte decoded without error")
	}
	if _, err := DecodeDict(nil); err == nil {
		t.Error("empty input decoded without error")
	}
}

func TestDictStableSerialization(t *testing.T) {
	// Two dictionaries built in different insertion orders must serialize
	// identically after canonicalization — checksum stability across
	// restarts depends on this.
	build := func(order []string) []byte {
		d := NewDict()
		for _, s := range order {
			d.ID(s)
		}
		d.Canonicalize()
		return EncodeDict(nil, d.Items())
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	if !reflect.DeepEqual(a, b) {
		t.Error("canonicalized dictionaries serialize differently")
	}
}

func TestDictLargeCardinality(t *testing.T) {
	d := NewDict()
	for i := 0; i < 10000; i++ {
		d.ID(fmt.Sprintf("entry-%d", i))
	}
	if d.Len() != 10000 {
		t.Fatalf("Len = %d", d.Len())
	}
	enc := EncodeDict(nil, d.Items())
	got, err := DecodeDict(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d.Items()) {
		t.Error("large dictionary round trip mismatch")
	}
}
