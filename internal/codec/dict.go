package codec

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Dictionary encoding replaces repeated strings with small integer indexes.
// Scuba's string columns (service names, error messages, hostnames) have low
// cardinality relative to row count, so a dictionary plus bit-packed indexes
// is the dominant source of the ~30x compression the paper reports (§2.1).
//
// The serialized dictionary blob (stored in the RBC's dictionary section,
// Figure 3) is:
//
//	[method byte][entry count varint]([len varint][bytes])*
//
// Entries are sorted so equal dictionaries serialize identically, which makes
// blob checksums stable across restarts.

// Dict maps strings to dense indexes during column building.
type Dict struct {
	ids   map[string]uint32
	items []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// ID interns s and returns its index.
func (d *Dict) ID(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(len(d.items))
	d.ids[s] = id
	d.items = append(d.items, s)
	return id
}

// Len reports the number of distinct entries.
func (d *Dict) Len() int { return len(d.items) }

// Items returns the interned strings indexed by ID. The returned slice is
// owned by the dictionary and must not be modified.
func (d *Dict) Items() []string { return d.items }

// Canonicalize re-sorts the dictionary entries and returns the remap table
// old-ID -> new-ID. Callers must rewrite any IDs handed out before the call.
func (d *Dict) Canonicalize() []uint32 {
	order := make([]int, len(d.items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return d.items[order[a]] < d.items[order[b]] })
	remap := make([]uint32, len(d.items))
	sorted := make([]string, len(d.items))
	for newID, oldID := range order {
		remap[oldID] = uint32(newID)
		sorted[newID] = d.items[oldID]
		d.ids[d.items[oldID]] = uint32(newID)
	}
	d.items = sorted
	return remap
}

// EncodeDict serializes the dictionary entries.
func EncodeDict(dst []byte, items []string) []byte {
	dst = append(dst, byte(MethodDict))
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for _, s := range items {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeDict parses a dictionary blob back into its entries.
func DecodeDict(src []byte) ([]string, error) {
	if len(src) == 0 || Method(src[0]) != MethodDict {
		return nil, ErrMethod
	}
	src = src[1:]
	n, used, err := Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[used:]
	if n > uint64(len(src)) { // each entry takes at least its length byte
		return nil, fmt.Errorf("%w: %d entries in %d bytes", ErrCorrupt, n, len(src))
	}
	items := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, used, err := Uvarint(src)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		src = src[used:]
		if uint64(len(src)) < l {
			return nil, fmt.Errorf("entry %d: %w: need %d bytes, have %d", i, ErrCorrupt, l, len(src))
		}
		items = append(items, string(src[:l]))
		src = src[l:]
	}
	return items, nil
}
