package codec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bit packing stores each value in exactly w bits, where w is the number of
// bits needed for the largest value in the block. Dictionary indexes and
// zigzagged deltas are packed this way (§2.1). Layout:
//
//	[method byte][count varint][width byte][packed little-endian bit stream]
//
// A width of zero is legal and means every value is zero (the stream is
// empty); this happens for constant columns after delta encoding.

// maxBitPackItems caps decoded item counts. Zero-width packing encodes any
// count in O(1) bytes, so the count cannot be validated against the payload
// size; this cap (far above the 65,536-row block limit) bounds what a
// corrupt stream can make the decoder allocate.
const maxBitPackItems = 1 << 26

// BitWidth returns the number of bits needed to represent v (0 for v == 0).
func BitWidth(v uint64) int { return bits.Len64(v) }

// maxBitWidth returns the width of the largest value.
func maxBitWidth(values []uint64) int {
	w := 0
	for _, v := range values {
		if bw := bits.Len64(v); bw > w {
			w = bw
		}
	}
	return w
}

// EncodeBitPackU64 packs values at the minimal fixed width.
func EncodeBitPackU64(dst []byte, values []uint64) []byte {
	w := maxBitWidth(values)
	dst = append(dst, byte(MethodBitPack))
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	dst = append(dst, byte(w))
	if w == 0 {
		return dst
	}
	nbytes := (len(values)*w + 7) / 8
	// Write through a 16-byte-padded scratch buffer so every value can be
	// stored with at most two unconditional 64-bit writes, even when the
	// value straddles a word boundary at full 64-bit width.
	buf := make([]byte, nbytes+16)
	bitpos := 0
	for _, v := range values {
		bytePos, bitOff := bitpos/8, bitpos%8
		u := binary.LittleEndian.Uint64(buf[bytePos:])
		u |= v << uint(bitOff)
		binary.LittleEndian.PutUint64(buf[bytePos:], u)
		if bitOff+w > 64 {
			u2 := binary.LittleEndian.Uint64(buf[bytePos+8:])
			u2 |= v >> uint(64-bitOff)
			binary.LittleEndian.PutUint64(buf[bytePos+8:], u2)
		}
		bitpos += w
	}
	return append(dst, buf[:nbytes]...)
}

// DecodeBitPackU64 decodes a stream produced by EncodeBitPackU64.
func DecodeBitPackU64(src []byte) ([]uint64, error) {
	if len(src) == 0 || Method(src[0]) != MethodBitPack {
		return nil, ErrMethod
	}
	src = src[1:]
	n64, used, err := Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[used:]
	if len(src) == 0 {
		return nil, ErrCorrupt
	}
	w := int(src[0])
	src = src[1:]
	if w > 64 {
		return nil, fmt.Errorf("%w: bit width %d", ErrCorrupt, w)
	}
	n := int(n64)
	if n < 0 || n64 > maxBitPackItems {
		return nil, fmt.Errorf("%w: %d items", ErrCorrupt, n64)
	}
	if w > 0 {
		// Validate the payload size before allocating the output so
		// untrusted counts cannot trigger huge allocations.
		need := (n*w + 7) / 8
		if len(src) < need {
			return nil, fmt.Errorf("%w: need %d packed bytes, have %d", ErrCorrupt, need, len(src))
		}
	}
	out := make([]uint64, n)
	if w == 0 {
		return out, nil
	}
	need := (n*w + 7) / 8
	mask := ^uint64(0)
	if w < 64 {
		mask = (1 << uint(w)) - 1
	}
	// Read through a padded copy so every value is at most two 64-bit loads.
	buf := make([]byte, need+16)
	copy(buf, src[:need])
	bitpos := 0
	for i := 0; i < n; i++ {
		bytePos, bitOff := bitpos/8, bitpos%8
		v := binary.LittleEndian.Uint64(buf[bytePos:]) >> uint(bitOff)
		if bitOff+w > 64 {
			v |= binary.LittleEndian.Uint64(buf[bytePos+8:]) << uint(64-bitOff)
		}
		out[i] = v & mask
		bitpos += w
	}
	return out, nil
}

// EncodeDeltaBPI64 delta-encodes signed values, zigzags the deltas, and bit
// packs them: the standard pipeline for the required "time" column, whose
// rows arrive in roughly chronological order (§2.1). Layout:
//
//	[method byte][count varint][first value zigzag varint][bitpacked zigzag deltas]
func EncodeDeltaBPI64(dst []byte, values []int64) []byte {
	dst = append(dst, byte(MethodDeltaBP))
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	if len(values) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, ZigZag(values[0]))
	deltas := make([]uint64, len(values)-1)
	for i := 1; i < len(values); i++ {
		deltas[i-1] = ZigZag(values[i] - values[i-1])
	}
	return EncodeBitPackU64(dst, deltas)
}

// DecodeDeltaBPI64 decodes a stream produced by EncodeDeltaBPI64.
func DecodeDeltaBPI64(src []byte) ([]int64, error) {
	if len(src) == 0 || Method(src[0]) != MethodDeltaBP {
		return nil, ErrMethod
	}
	src = src[1:]
	count, used, err := Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[used:]
	if count == 0 {
		return nil, nil
	}
	first, used, err := Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[used:]
	deltas, err := DecodeBitPackU64(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(deltas)+1) != count {
		return nil, fmt.Errorf("%w: count %d but %d deltas", ErrCorrupt, count, len(deltas))
	}
	out := make([]int64, count)
	out[0] = UnZigZag(first)
	for i, d := range deltas {
		out[i+1] = out[i] + UnZigZag(d)
	}
	return out, nil
}
