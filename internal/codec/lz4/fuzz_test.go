package lz4

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks compress->decompress identity on arbitrary inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("hello hello hello hello"))
	f.Add(bytes.Repeat([]byte{0}, 100))
	f.Add([]byte("INFO service=web status=200\nINFO service=web status=200\n"))
	f.Fuzz(func(t *testing.T, src []byte) {
		comp, err := Compress(nil, src)
		if err != nil {
			t.Skip()
		}
		got, err := Decompress(comp, len(src))
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
		}
	})
}

// FuzzDecompress checks the decoder never panics or overruns on arbitrary
// (usually invalid) compressed input.
func FuzzDecompress(f *testing.F) {
	valid, _ := Compress(nil, []byte("some valid payload some valid payload"))
	f.Add(valid, 38)
	f.Add([]byte{0xf0, 0x01, 0x02}, 100)
	f.Add([]byte(nil), 0)
	f.Fuzz(func(t *testing.T, comp []byte, size int) {
		if size < 0 || size > 1<<20 {
			t.Skip()
		}
		Decompress(comp, size) //nolint:errcheck // only checking for panics
	})
}
