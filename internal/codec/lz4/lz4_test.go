package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp, err := Compress(nil, src)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	got, err := Decompress(comp, len(src))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
	}
	return comp
}

func TestEmpty(t *testing.T) {
	comp, err := Compress(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestShortInputs(t *testing.T) {
	for n := 1; n < 20; n++ {
		src := bytes.Repeat([]byte{'a'}, n)
		roundTrip(t, src)
	}
}

func TestHighlyCompressible(t *testing.T) {
	src := bytes.Repeat([]byte("abcd"), 16384) // 64 KiB
	comp := roundTrip(t, src)
	if len(comp) > len(src)/20 {
		t.Errorf("repetitive data compressed to %d of %d bytes", len(comp), len(src))
	}
}

func TestLogLikeData(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 2000; i++ {
		b.WriteString("INFO service=webtier host=frc1-")
		b.WriteByte(byte('a' + i%26))
		b.WriteString(" status=200 latency_ms=")
		b.WriteByte(byte('0' + i%10))
		b.WriteString("\n")
	}
	src := []byte(b.String())
	comp := roundTrip(t, src)
	if len(comp) > len(src)/4 {
		t.Errorf("log data compressed to %d of %d bytes, want >=4x", len(comp), len(src))
	}
}

func TestIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 100000)
	rng.Read(src)
	comp := roundTrip(t, src)
	if len(comp) > CompressBound(len(src)) {
		t.Errorf("compressed %d exceeds bound %d", len(comp), CompressBound(len(src)))
	}
}

func TestLongMatch(t *testing.T) {
	// A very long single match exercises length-extension bytes.
	src := make([]byte, 70000)
	copy(src, "0123456789abcdef")
	for i := 16; i < len(src); i++ {
		src[i] = src[i-16]
	}
	comp := roundTrip(t, src)
	if len(comp) > 1000 {
		t.Errorf("long periodic match compressed to %d bytes", len(comp))
	}
}

func TestFarMatchBeyondWindow(t *testing.T) {
	// Matches farther than 65535 bytes back must not be emitted.
	block := make([]byte, 200)
	rng := rand.New(rand.NewSource(7))
	rng.Read(block)
	var src []byte
	src = append(src, block...)
	src = append(src, bytes.Repeat([]byte{0}, 70000)...)
	src = append(src, block...)
	roundTrip(t, src)
}

func TestOverlappingMatchDecode(t *testing.T) {
	// RLE-style overlap: offset 1, long match.
	src := bytes.Repeat([]byte{'z'}, 1000)
	roundTrip(t, src)
}

func TestProperty(t *testing.T) {
	f := func(src []byte) bool {
		comp, err := Compress(nil, src)
		if err != nil {
			return false
		}
		got, err := Decompress(comp, len(src))
		if err != nil {
			return false
		}
		return bytes.Equal(got, src)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStructured(t *testing.T) {
	// Random data rarely has matches; synthesize structured inputs too.
	rng := rand.New(rand.NewSource(42))
	words := []string{"scuba", "leaf", "aggregator", "rowblock", "shm", "restart"}
	for trial := 0; trial < 100; trial++ {
		var b bytes.Buffer
		n := rng.Intn(5000)
		for b.Len() < n {
			b.WriteString(words[rng.Intn(len(words))])
			if rng.Intn(4) == 0 {
				b.WriteByte(byte(rng.Intn(256)))
			}
		}
		roundTrip(t, b.Bytes())
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := bytes.Repeat([]byte("hello world "), 100)
	comp, err := Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations must error or produce short output, never panic.
	for cut := 0; cut < len(comp); cut++ {
		got, err := Decompress(comp[:cut], len(src))
		if err == nil && bytes.Equal(got, src) && cut < len(comp) {
			t.Fatalf("truncation at %d still decoded fully", cut)
		}
	}
	// Flipping bytes must never panic.
	for i := 0; i < len(comp); i++ {
		bad := append([]byte(nil), comp...)
		bad[i] ^= 0xff
		Decompress(bad, len(src)) //nolint:errcheck // only checking for panics
	}
}

func TestDecompressWrongSize(t *testing.T) {
	src := []byte("some payload that compresses")
	comp, err := Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp, len(src)-1); err == nil {
		t.Error("short destination decoded without error")
	}
	if _, err := Decompress(comp, len(src)+10); err == nil {
		t.Error("long destination decoded without error")
	}
}

func TestCompressAppends(t *testing.T) {
	prefix := []byte("PREFIX")
	src := bytes.Repeat([]byte("data"), 100)
	out, err := Compress(append([]byte(nil), prefix...), src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Error("Compress did not append to dst")
	}
	got, err := Decompress(out[len(prefix):], len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Errorf("appended compress round trip failed: %v", err)
	}
}

func BenchmarkCompressLogData(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 20000; i++ {
		sb.WriteString("INFO service=webtier host=frc1 status=200 latency_ms=42\n")
	}
	src := []byte(sb.String())
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(nil, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressLogData(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 20000; i++ {
		sb.WriteString("INFO service=webtier host=frc1 status=200 latency_ms=42\n")
	}
	src := []byte(sb.String())
	comp, err := Compress(nil, src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, len(src)); err != nil {
			b.Fatal(err)
		}
	}
}
