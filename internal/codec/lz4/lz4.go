// Package lz4 implements the LZ4 block format from scratch on the standard
// library. Scuba applies lz4 as the byte-level stage of its column
// compression pipeline (§2.1, reference [7]); this package provides a
// compatible compressor and decompressor for that role.
//
// Block format (https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md):
// a sequence of [token][literal length+][literals][offset][match length+]
// records, where each token packs a 4-bit literal length and a 4-bit match
// length, lengths >= 15 continue in 255-saturated extension bytes, offsets
// are 2-byte little-endian, and matches are at least 4 bytes. The final
// sequence carries literals only.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch      = 4
	hashLog       = 14
	hashTableSize = 1 << hashLog
	// The last 5 bytes of a block are always literals, and the last match
	// must start at least 12 bytes before the end (format requirements).
	lastLiterals  = 5
	mfLimit       = 12
	maxOffset     = 65535
	tokenMaxLen   = 15
	skipTrigger   = 6 // compression-speed heuristic: accelerate after misses
	maxBlockInput = 0x7E000000
)

// Errors returned by this package.
var (
	ErrTooLarge    = errors.New("lz4: input exceeds maximum block size")
	ErrCorrupt     = errors.New("lz4: corrupt block")
	ErrDstTooSmall = errors.New("lz4: destination too small")
)

// CompressBound returns the maximum compressed size for n input bytes.
func CompressBound(n int) int { return n + n/255 + 16 }

func hash4(v uint32) uint32 { return (v * 2654435761) >> (32 - hashLog) }

func load32(b []byte, i int) uint32 { return binary.LittleEndian.Uint32(b[i:]) }

// Compress appends the LZ4 block encoding of src to dst and returns the
// extended slice. Incompressible input grows by at most CompressBound.
func Compress(dst, src []byte) ([]byte, error) {
	if len(src) > maxBlockInput {
		return nil, ErrTooLarge
	}
	if len(src) == 0 {
		return dst, nil
	}
	if len(src) < mfLimit {
		return appendLiteralRun(dst, src), nil
	}
	var table [hashTableSize]int32 // position+1; 0 means empty
	anchor := 0
	pos := 0
	limit := len(src) - mfLimit
	searchMisses := 0

	for pos <= limit {
		h := hash4(load32(src, pos))
		candidate := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if candidate >= 0 && pos-candidate <= maxOffset && load32(src, candidate) == load32(src, pos) {
			// Extend the match backward over pending literals.
			for pos > anchor && candidate > 0 && src[pos-1] == src[candidate-1] {
				pos--
				candidate--
			}
			matchLen := minMatch
			maxLen := len(src) - lastLiterals - pos
			for matchLen < maxLen && src[pos+matchLen] == src[candidate+matchLen] {
				matchLen++
			}
			dst = appendSequence(dst, src[anchor:pos], pos-candidate, matchLen)
			pos += matchLen
			anchor = pos
			searchMisses = 0
			// Seed the table inside the match so long repeats chain.
			if pos-2 > 0 && pos-2 <= limit {
				table[hash4(load32(src, pos-2))] = int32(pos - 1)
			}
			continue
		}
		searchMisses++
		pos += 1 + searchMisses>>skipTrigger
	}
	return appendLiteralRun(dst, src[anchor:]), nil
}

// appendSequence writes one [token][literals][offset][matchlen ext] record.
func appendSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	ml := matchLen - minMatch
	token := byte(0)
	if litLen >= tokenMaxLen {
		token = tokenMaxLen << 4
	} else {
		token = byte(litLen) << 4
	}
	if ml >= tokenMaxLen {
		token |= tokenMaxLen
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= tokenMaxLen {
		dst = appendLenExt(dst, litLen-tokenMaxLen)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= tokenMaxLen {
		dst = appendLenExt(dst, ml-tokenMaxLen)
	}
	return dst
}

// appendLiteralRun writes the final literals-only sequence.
func appendLiteralRun(dst, literals []byte) []byte {
	litLen := len(literals)
	if litLen >= tokenMaxLen {
		dst = append(dst, tokenMaxLen<<4)
		dst = appendLenExt(dst, litLen-tokenMaxLen)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

func appendLenExt(dst []byte, rest int) []byte {
	for rest >= 255 {
		dst = append(dst, 255)
		rest -= 255
	}
	return append(dst, byte(rest))
}

// Decompress decodes an LZ4 block into a buffer of exactly decompressedSize
// bytes. The size comes from the enclosing container (the RBC header stores
// the uncompressed length).
func Decompress(src []byte, decompressedSize int) ([]byte, error) {
	dst := make([]byte, decompressedSize)
	n, err := DecompressInto(dst, src)
	if err != nil {
		return nil, err
	}
	if n != decompressedSize {
		return nil, fmt.Errorf("%w: decoded %d bytes, expected %d", ErrCorrupt, n, decompressedSize)
	}
	return dst, nil
}

// DecompressInto decodes an LZ4 block into dst and returns the number of
// bytes written.
func DecompressInto(dst, src []byte) (int, error) {
	di, si := 0, 0
	if len(src) == 0 {
		return 0, nil
	}
	for {
		if si >= len(src) {
			return 0, fmt.Errorf("%w: truncated token", ErrCorrupt)
		}
		token := src[si]
		si++
		litLen := int(token >> 4)
		if litLen == tokenMaxLen {
			n, used, err := readLenExt(src[si:])
			if err != nil {
				return 0, err
			}
			litLen += n
			si += used
		}
		if si+litLen > len(src) {
			return 0, fmt.Errorf("%w: literal run past input", ErrCorrupt)
		}
		if di+litLen > len(dst) {
			return 0, ErrDstTooSmall
		}
		copy(dst[di:], src[si:si+litLen])
		si += litLen
		di += litLen
		if si == len(src) {
			return di, nil // final literals-only sequence
		}
		if si+2 > len(src) {
			return 0, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		if offset == 0 || offset > di {
			return 0, fmt.Errorf("%w: offset %d at output position %d", ErrCorrupt, offset, di)
		}
		matchLen := int(token & 0x0f)
		if matchLen == tokenMaxLen {
			n, used, err := readLenExt(src[si:])
			if err != nil {
				return 0, err
			}
			matchLen += n
			si += used
		}
		matchLen += minMatch
		if di+matchLen > len(dst) {
			return 0, ErrDstTooSmall
		}
		// Overlapping copy: must proceed byte-wise when offset < matchLen.
		ref := di - offset
		for i := 0; i < matchLen; i++ {
			dst[di+i] = dst[ref+i]
		}
		di += matchLen
	}
}

func readLenExt(src []byte) (n, used int, err error) {
	for {
		if used >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
		}
		b := src[used]
		used++
		n += int(b)
		if b != 255 {
			return n, used, nil
		}
	}
}
