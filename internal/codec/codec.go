// Package codec implements the column compression methods used by Scuba's
// row block columns: dictionary encoding, delta (zigzag) encoding, bit
// packing, varint encoding, and an LZ4-style block compressor. The paper
// (§2.1) states that Scuba applies at least two methods to every column and
// achieves roughly 30x compression on production data; this package provides
// the same building blocks and composes them the same way.
//
// Every encoder writes self-describing blobs: the first byte of an encoded
// stream is a Method code so decoders can verify they were handed the right
// stream. Higher layers (internal/layout) record the composed method in the
// row block column header's compression-code field.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Method identifies a single compression method. Composed pipelines are
// described by a Code (see below) in the RBC header.
type Method uint8

// Compression methods. The zero value is reserved so that an all-zero
// (uninitialized) buffer never decodes as valid.
const (
	MethodInvalid Method = iota
	MethodRaw            // no transform
	MethodVarint         // unsigned LEB128 varints
	MethodZigZag         // signed -> unsigned zigzag, then varint
	MethodDelta          // delta between consecutive values, zigzag+varint
	MethodBitPack        // fixed-width bit packing
	MethodDeltaBP        // delta, then bit packing of zigzagged deltas
	MethodDict           // dictionary indexes (composed with BitPack)
	MethodLZ4            // LZ4 block compression over the payload
)

func (m Method) String() string {
	switch m {
	case MethodRaw:
		return "raw"
	case MethodVarint:
		return "varint"
	case MethodZigZag:
		return "zigzag"
	case MethodDelta:
		return "delta"
	case MethodBitPack:
		return "bitpack"
	case MethodDeltaBP:
		return "delta+bitpack"
	case MethodDict:
		return "dict"
	case MethodLZ4:
		return "lz4"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// Code describes the full pipeline applied to a column's values, stored in
// the RBC header (Figure 3: "Compression code"). It packs up to two stages:
// the value transform (low nibble) and the byte-stream compressor (high
// nibble). The paper applies at least two methods per column; a Code of
// (Delta|LZ4) means "delta-encode values, then LZ4 the bytes".
type Code uint8

// NewCode composes a value transform and a byte compressor.
func NewCode(transform, compressor Method) Code {
	return Code(uint8(transform)&0x0f | uint8(compressor)<<4)
}

// Transform returns the value-level stage of the pipeline.
func (c Code) Transform() Method { return Method(uint8(c) & 0x0f) }

// Compressor returns the byte-level stage of the pipeline.
func (c Code) Compressor() Method { return Method(uint8(c) >> 4) }

func (c Code) String() string {
	if c.Compressor() == MethodRaw || c.Compressor() == MethodInvalid {
		return c.Transform().String()
	}
	return c.Transform().String() + "|" + c.Compressor().String()
}

// Errors shared by the decoders.
var (
	ErrCorrupt  = errors.New("codec: corrupt stream")
	ErrMethod   = errors.New("codec: unexpected method byte")
	ErrOverflow = errors.New("codec: varint overflows 64 bits")
)

// ZigZag maps signed integers to unsigned so small magnitudes stay small.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUvarint appends v in LEB128 form.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes a LEB128 value, returning the value and bytes consumed.
func Uvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		if n == 0 {
			return 0, 0, ErrCorrupt
		}
		return 0, 0, ErrOverflow
	}
	return v, n, nil
}

// EncodeVarintU64 encodes values as [method byte][count varint][values...].
func EncodeVarintU64(dst []byte, values []uint64) []byte {
	dst = append(dst, byte(MethodVarint))
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	for _, v := range values {
		dst = binary.AppendUvarint(dst, v)
	}
	return dst
}

// DecodeVarintU64 decodes a stream produced by EncodeVarintU64.
func DecodeVarintU64(src []byte) ([]uint64, error) {
	if len(src) == 0 || Method(src[0]) != MethodVarint {
		return nil, ErrMethod
	}
	src = src[1:]
	n, used, err := Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[used:]
	// Every value takes at least one byte; reject counts the stream cannot
	// hold so untrusted input never sizes an allocation.
	if n > uint64(len(src)) {
		return nil, fmt.Errorf("%w: %d values in %d bytes", ErrCorrupt, n, len(src))
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := Uvarint(src)
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		src = src[used:]
		out = append(out, v)
	}
	return out, nil
}

// EncodeDeltaI64 delta-encodes signed values: the first value is stored
// zigzag-varint, then each delta is stored zigzag-varint. Timestamps and
// other near-monotonic columns compress extremely well this way (§2.1).
func EncodeDeltaI64(dst []byte, values []int64) []byte {
	dst = append(dst, byte(MethodDelta))
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	prev := int64(0)
	for _, v := range values {
		dst = binary.AppendUvarint(dst, ZigZag(v-prev))
		prev = v
	}
	return dst
}

// DecodeDeltaI64 decodes a stream produced by EncodeDeltaI64.
func DecodeDeltaI64(src []byte) ([]int64, error) {
	if len(src) == 0 || Method(src[0]) != MethodDelta {
		return nil, ErrMethod
	}
	src = src[1:]
	n, used, err := Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[used:]
	if n > uint64(len(src)) { // each delta is at least one byte
		return nil, fmt.Errorf("%w: %d deltas in %d bytes", ErrCorrupt, n, len(src))
	}
	out := make([]int64, 0, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		u, used, err := Uvarint(src)
		if err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
		src = src[used:]
		prev += UnZigZag(u)
		out = append(out, prev)
	}
	return out, nil
}
