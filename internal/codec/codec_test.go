package codec

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZigZagRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 63, -64, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		if got := UnZigZag(ZigZag(v)); got != v {
			t.Errorf("UnZigZag(ZigZag(%d)) = %d", v, got)
		}
	}
}

func TestZigZagOrdering(t *testing.T) {
	// Small magnitudes must map to small codes, or varints would bloat.
	if ZigZag(0) != 0 || ZigZag(-1) != 1 || ZigZag(1) != 2 || ZigZag(-2) != 3 {
		t.Fatalf("zigzag mapping broken: %d %d %d %d", ZigZag(0), ZigZag(-1), ZigZag(1), ZigZag(-2))
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintU64RoundTrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{1, 2, 3},
		{math.MaxUint64, 0, 127, 128, 16383, 16384},
	}
	for _, vals := range cases {
		enc := EncodeVarintU64(nil, vals)
		got, err := DecodeVarintU64(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(got) == 0 && len(vals) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("round trip %v -> %v", vals, got)
		}
	}
}

func TestVarintU64Property(t *testing.T) {
	f := func(vals []uint64) bool {
		enc := EncodeVarintU64(nil, vals)
		got, err := DecodeVarintU64(enc)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintU64WrongMethod(t *testing.T) {
	enc := EncodeDeltaI64(nil, []int64{1, 2})
	if _, err := DecodeVarintU64(enc); err == nil {
		t.Fatal("expected method error decoding delta stream as varint")
	}
}

func TestDeltaI64RoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{5, 5, 5, 5},
		{1, 2, 3, 4, 5},
		{100, 50, 200, -7, math.MaxInt64, math.MinInt64 + 1},
	}
	for _, vals := range cases {
		enc := EncodeDeltaI64(nil, vals)
		got, err := DecodeDeltaI64(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(got) == 0 && len(vals) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("round trip %v -> %v", vals, got)
		}
	}
}

func TestDeltaI64Monotonic(t *testing.T) {
	// Near-monotonic timestamps should encode to ~1 byte per value.
	vals := make([]int64, 1000)
	ts := int64(1700000000)
	for i := range vals {
		ts += int64(i % 3)
		vals[i] = ts
	}
	enc := EncodeDeltaI64(nil, vals)
	if len(enc) > len(vals)*2 {
		t.Errorf("delta encoding of timestamps too large: %d bytes for %d values", len(enc), len(vals))
	}
}

func TestDeltaI64Property(t *testing.T) {
	f := func(vals []int64) bool {
		enc := EncodeDeltaI64(nil, vals)
		got, err := DecodeDeltaI64(enc)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDeltaTruncated(t *testing.T) {
	enc := EncodeDeltaI64(nil, []int64{1, 1000000, -123456789})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeDeltaI64(enc[:cut]); err == nil {
			// A truncation may still parse if it lands on a value
			// boundary before the declared count is satisfied —
			// but the count check must catch that.
			got, _ := DecodeDeltaI64(enc[:cut])
			if len(got) == 3 {
				t.Errorf("truncated stream at %d decoded fully", cut)
			}
		}
	}
}

func TestCodeComposition(t *testing.T) {
	c := NewCode(MethodDelta, MethodLZ4)
	if c.Transform() != MethodDelta {
		t.Errorf("Transform = %v", c.Transform())
	}
	if c.Compressor() != MethodLZ4 {
		t.Errorf("Compressor = %v", c.Compressor())
	}
	if c.String() != "delta|lz4" {
		t.Errorf("String = %q", c.String())
	}
	plain := NewCode(MethodDict, MethodRaw)
	if plain.String() != "dict" {
		t.Errorf("plain String = %q", plain.String())
	}
}

func TestMethodStrings(t *testing.T) {
	for m := MethodRaw; m <= MethodLZ4; m++ {
		if s := m.String(); s == "" {
			t.Errorf("method %d has empty name", m)
		}
	}
	if Method(200).String() != "method(200)" {
		t.Errorf("unknown method name = %q", Method(200).String())
	}
}
