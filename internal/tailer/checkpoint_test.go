package tailer

import (
	"os"
	"path/filepath"
	"testing"

	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/scribe"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cp := NewCheckpoint(filepath.Join(t.TempDir(), "tailer.ckpt"))
	if cp.Load() != 0 {
		t.Error("missing checkpoint should load as 0")
	}
	if err := cp.Save(12345); err != nil {
		t.Fatal(err)
	}
	if got := cp.Load(); got != 12345 {
		t.Errorf("Load = %d", got)
	}
}

func TestCheckpointCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tailer.ckpt")
	cp := NewCheckpoint(path)
	if err := cp.Save(777); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if got := cp.Load(); got != 0 {
			t.Fatalf("corrupt checkpoint (flip %d) loaded as %d", i, got)
		}
	}
	// Truncated file too.
	if err := os.WriteFile(path, raw[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if cp.Load() != 0 {
		t.Error("truncated checkpoint loaded")
	}
}

// TestCheckpointSaveOverTruncatedState replays a crash mid-Save: a stale,
// truncated temp file and a truncated checkpoint are both on disk. Load must
// treat the state as absent and the next Save must repair it atomically.
func TestCheckpointSaveOverTruncatedState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tailer.ckpt")
	cp := NewCheckpoint(path)
	if err := os.WriteFile(path+".tmp", []byte{0x01, 0x02}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte{0x03}, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := cp.Load(); got != 0 {
		t.Fatalf("truncated checkpoint loaded as %d", got)
	}
	if err := cp.Save(4242); err != nil {
		t.Fatal(err)
	}
	if got := cp.Load(); got != 4242 {
		t.Errorf("Load after repair = %d, want 4242", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived Save: %v", err)
	}
}

// TestTailerRestartResumesFromCheckpoint replays the rollover scenario for
// tailers: produce, drain with checkpointing, "restart" the tailer (new
// instance, same checkpoint), produce more — nothing is replayed or lost.
func TestTailerRestartResumesFromCheckpoint(t *testing.T) {
	bus := scribe.NewBus(0)
	l := newLeaf(t, 0, 1<<40)
	p := NewPlacer([]Target{leafTarget{l}}, 5)
	cp := NewCheckpoint(filepath.Join(t.TempDir(), "t.ckpt"))

	produce := func(n int, start int64) {
		for i := 0; i < n; i++ {
			b, err := EncodeRow(rowblock.Row{Time: start + int64(i)})
			if err != nil {
				t.Fatal(err)
			}
			bus.Append("c", b)
		}
	}
	count := func() float64 {
		q := &query.Query{Table: "t", From: 0, To: 1 << 40,
			Aggregations: []query.Aggregation{{Op: query.AggCount}}}
		res, err := l.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		rows := res.Rows(q)
		if len(rows) == 0 {
			return 0
		}
		return rows[0].Values[0]
	}

	produce(1000, 0)
	t1 := New(Config{Category: "c", Table: "t", Checkpoint: cp}, bus, p, 0)
	if _, err := t1.DrainOnce(); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 1000 {
		t.Fatalf("after first drain: %v", got)
	}

	// "Restart": a new tailer instance with the same checkpoint. More rows
	// arrived while it was down.
	produce(500, 5000)
	t2 := New(Config{Category: "c", Table: "t", Checkpoint: cp}, bus, p, 0)
	placed, err := t2.DrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if placed != 500 {
		t.Errorf("replayed or lost rows: placed %d, want 500", placed)
	}
	if got := count(); got != 1500 {
		t.Errorf("total = %v", got)
	}
}
