package tailer

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"scuba/internal/leaf"
	"scuba/internal/rowblock"
	"scuba/internal/scribe"
	"scuba/internal/shard"
)

// recTarget records AddRows calls per physical table; failing on demand.
type recTarget struct {
	mu   sync.Mutex
	got  map[string]int // physical table -> rows received
	fail bool
}

func (r *recTarget) Stats() (leaf.Stats, error) { return leaf.Stats{State: leaf.StateAlive}, nil }

func (r *recTarget) AddRows(table string, rows []rowblock.Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail {
		return errors.New("refused")
	}
	if r.got == nil {
		r.got = map[string]int{}
	}
	r.got[table] += len(rows)
	return nil
}

func shardedFixture(n, replication, numShards int) ([]*recTarget, []Target, *shard.Router) {
	recs := make([]*recTarget, n)
	targets := make([]Target, n)
	leaves := make([]shard.Leaf, n)
	for i := range recs {
		recs[i] = &recTarget{}
		targets[i] = recs[i]
		leaves[i] = shard.Leaf{Name: fmt.Sprintf("l%d", i), Machine: i}
	}
	return recs, targets, shard.NewRouter(shard.NewMap(leaves, replication, numShards))
}

// TestShardedPlacerDualWrites checks every batch lands on ALL owners of its
// shard, in the shard's physical table, with identical row counts.
func TestShardedPlacerDualWrites(t *testing.T) {
	recs, targets, router := shardedFixture(4, 2, 8)
	p := NewShardedPlacer(targets, router)
	rows := []rowblock.Row{{Time: 1}, {Time: 2}}
	for i := 0; i < 16; i++ { // two full round-robin passes
		if _, err := p.Place("events", rows); err != nil {
			t.Fatal(err)
		}
	}
	m := router.Map()
	for s := 0; s < 8; s++ {
		phys := shard.PhysicalTable("events", s)
		owners := m.Owners("events", s)
		if len(owners) != 2 {
			t.Fatalf("shard %d has %d owners, want 2", s, len(owners))
		}
		for _, o := range owners {
			if got := recs[o].got[phys]; got != 4 { // 2 batches x 2 rows
				t.Fatalf("owner %d of shard %d got %d rows of %s, want 4", o, s, got, phys)
			}
		}
		// Nobody else received this shard.
		for i, r := range recs {
			if r.got[phys] > 0 && i != owners[0] && i != owners[1] {
				t.Fatalf("non-owner %d received %s", i, phys)
			}
		}
	}
	st := p.Stats()
	if st.Batches != 16 || st.Copies != 32 || st.MissedCopies != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardedPlacerSurvivesOwnerFailure: one owner refusing doesn't fail the
// batch (the other copy counts), and a fully-failed shard does.
func TestShardedPlacerSurvivesOwnerFailure(t *testing.T) {
	recs, targets, router := shardedFixture(2, 2, 1)
	p := NewShardedPlacer(targets, router)
	recs[0].fail = true
	if _, err := p.Place("events", []rowblock.Row{{Time: 1}}); err != nil {
		t.Fatalf("one live owner should carry the batch: %v", err)
	}
	if st := p.Stats(); st.MissedCopies != 1 || st.Copies != 1 {
		t.Fatalf("stats = %+v", st)
	}
	recs[1].fail = true
	if _, err := p.Place("events", []rowblock.Row{{Time: 2}}); err == nil {
		t.Fatal("every owner refused but Place succeeded")
	}
}

// TestShardedPlacerSkipsDownOwners: a DOWN leaf gets no writes, a DRAINING
// leaf still does (its drain preserves them across the restart).
func TestShardedPlacerSkipsDownOwners(t *testing.T) {
	recs, targets, router := shardedFixture(3, 3, 1)
	p := NewShardedPlacer(targets, router)
	m := router.Map()
	owners := m.Owners("events", 0)
	router.SetStatus(owners[0], shard.StatusDown)
	router.SetStatus(owners[1], shard.StatusDraining)
	if _, err := p.Place("events", []rowblock.Row{{Time: 1}}); err != nil {
		t.Fatal(err)
	}
	phys := shard.PhysicalTable("events", 0)
	if recs[owners[0]].got[phys] != 0 {
		t.Fatal("DOWN owner received a write")
	}
	if recs[owners[1]].got[phys] != 1 {
		t.Fatal("DRAINING owner missed its write")
	}
	if recs[owners[2]].got[phys] != 1 {
		t.Fatal("ACTIVE owner missed its write")
	}
}

// TestTailerDrivesShardedPlacer checks the Tailer loop composes with the
// sharded placer through the BatchPlacer seam.
func TestTailerDrivesShardedPlacer(t *testing.T) {
	recs, targets, router := shardedFixture(2, 2, 2)
	p := NewShardedPlacer(targets, router)
	bus := scribe.NewBus(0)
	for i := 0; i < 10; i++ {
		b, err := EncodeRow(rowblock.Row{Time: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		bus.Append("events", b)
	}
	tl := New(Config{Category: "events", BatchRows: 5}, bus, p, 0)
	placed, err := tl.DrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if placed != 10 {
		t.Fatalf("placed = %d, want 10", placed)
	}
	var total int
	for _, r := range recs {
		for _, n := range r.got {
			total += n
		}
	}
	// 10 rows x 2 copies under R=2.
	if total != 20 {
		t.Fatalf("rows landed = %d, want 20 (dual-written)", total)
	}
}
