package tailer

import (
	"errors"
	"fmt"
	"sync"

	"scuba/internal/rowblock"
	"scuba/internal/shard"
)

// ShardedPlacer places batches under a shard map instead of two-random-choice:
// each batch is assigned a shard (round-robin, so load spreads over the
// table's shards) and dual-written to every owner of that shard that is not
// down — the primary and its replicas receive identical copies, which is what
// lets the aggregator fail a restarting primary's shards over to a replica
// without losing a row. Rows land leaf-side in the shard's physical table
// (shard.PhysicalTable).
//
// A batch succeeds if at least one owner accepted it (the paper's contract:
// availability over completeness — a restarting replica misses the batch and
// serves slightly stale data until anti-entropy, which is out of scope here);
// it fails only when every owner refused.
type ShardedPlacer struct {
	mu      sync.Mutex
	targets []Target
	router  *shard.Router
	next    int // round-robin shard cursor
	stats   ShardedPlacerStats
}

// ShardedPlacerStats counts dual-write outcomes.
type ShardedPlacerStats struct {
	Batches    int64
	RowsPlaced int64
	// Copies counts per-owner writes that succeeded (>= Batches under
	// replication; == Batches when R=1 or only one owner was up).
	Copies int64
	// MissedCopies counts owner writes that failed while another owner
	// accepted the batch — the replica divergence an anti-entropy pass
	// would repair.
	MissedCopies int64
	PerTarget    []int64
}

// NewShardedPlacer builds a placer over targets index-parallel to the
// router's map leaves (target i stores shards owned by map leaf i).
func NewShardedPlacer(targets []Target, router *shard.Router) *ShardedPlacer {
	return &ShardedPlacer{
		targets: targets,
		router:  router,
		stats:   ShardedPlacerStats{PerTarget: make([]int64, len(targets))},
	}
}

// Stats returns a snapshot of dual-write counters.
func (p *ShardedPlacer) Stats() ShardedPlacerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.PerTarget = append([]int64(nil), p.stats.PerTarget...)
	return st
}

// Place writes one batch to every live owner of the next shard of the table,
// returning the index of the first owner that accepted it. It implements the
// same interface shape as Placer.Place so Tailer can drive either.
func (p *ShardedPlacer) Place(table string, rows []rowblock.Row) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.router.Map()
	if m.NumShards == 0 || len(p.targets) == 0 {
		return -1, ErrNoTarget
	}
	s := p.next % m.NumShards
	p.next++
	p.stats.Batches++
	owners := p.router.WritePlan(table)[s]
	physical := shard.PhysicalTable(table, s)
	first := -1
	var errs []error
	for _, o := range owners {
		if o < 0 || o >= len(p.targets) {
			continue
		}
		if err := p.targets[o].AddRows(physical, rows); err != nil {
			errs = append(errs, fmt.Errorf("leaf %d: %w", o, err))
			continue
		}
		p.stats.Copies++
		p.stats.PerTarget[o]++
		if first < 0 {
			first = o
		}
	}
	if first < 0 {
		if len(errs) == 0 {
			return -1, ErrNoTarget
		}
		return -1, fmt.Errorf("tailer: every owner of %s refused: %w", physical, errors.Join(errs...))
	}
	p.stats.MissedCopies += int64(len(errs))
	p.stats.RowsPlaced += int64(len(rows))
	return first, nil
}
