// Package tailer implements Scuba's tailer processes (§2, Figure 1). A
// tailer pulls one table's rows out of Scribe and, every N rows or t
// seconds, chooses a leaf server and sends it the batch.
//
// Placement is the paper's two-random-choice policy: pick two leaves at
// random, ask both for their state and free memory, and send to the leaf
// with more free memory if both are alive. If only one is alive, it gets
// the batch. If neither is alive, try two more leaves, and after enough
// tries send the data to a restarting server (§2).
package tailer

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"scuba/internal/leaf"
	"scuba/internal/metrics"
	"scuba/internal/rowblock"
	"scuba/internal/scribe"
)

// Target is a leaf server as seen by a tailer: something that reports state
// and free memory and accepts batches. In-process clusters adapt
// *leaf.Leaf; distributed deployments adapt a wire client.
type Target interface {
	Stats() (leaf.Stats, error)
	AddRows(table string, rows []rowblock.Row) error
}

// EncodeRow serializes a row for a Scribe payload.
func EncodeRow(r rowblock.Row) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("tailer: encode row: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRow parses a Scribe payload back into a row.
func DecodeRow(b []byte) (rowblock.Row, error) {
	var r rowblock.Row
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return rowblock.Row{}, fmt.Errorf("tailer: decode row: %w", err)
	}
	return r, nil
}

// ErrNoTarget is returned when no leaf could accept a batch at all.
var ErrNoTarget = errors.New("tailer: no leaf accepted the batch")

// BatchPlacer chooses where one batch lands. Placer implements the paper's
// two-random-choice policy; ShardedPlacer dual-writes under a shard map.
type BatchPlacer interface {
	Place(table string, rows []rowblock.Row) (int, error)
}

// PlacerStats counts placement decisions for the balance experiments (E10).
type PlacerStats struct {
	Batches        int64
	RowsPlaced     int64
	BothAlive      int64 // decided by free memory between two alive leaves
	OneAlive       int64 // only one of the pair was alive
	RetriedPairs   int64 // extra pairs tried because neither was alive
	SentToRecovery int64 // fell back to a restarting server
	PerTarget      []int64
}

// Policy selects the placement strategy. The paper uses two-random-choice;
// PolicyRandom exists as an ablation baseline (experiment E10).
type Policy uint8

// Placement policies.
const (
	PolicyTwoChoice Policy = iota // pick two, send to the freer alive leaf
	PolicyRandom                  // pick one alive leaf uniformly at random
)

// Placer implements two-random-choice placement over a fixed target set.
type Placer struct {
	mu      sync.Mutex
	targets []Target
	rng     *rand.Rand
	// MaxTries is how many random pairs to probe before falling back to a
	// restarting server. The paper says "after enough tries".
	MaxTries int
	// Policy is PolicyTwoChoice unless overridden for ablations.
	Policy Policy
	stats  PlacerStats
}

// NewPlacer creates a placer; seed fixes the random choices for tests.
func NewPlacer(targets []Target, seed int64) *Placer {
	return &Placer{
		targets:  targets,
		rng:      rand.New(rand.NewSource(seed)),
		MaxTries: 4,
		stats:    PlacerStats{PerTarget: make([]int64, len(targets))},
	}
}

// Stats returns a snapshot of placement counters.
func (p *Placer) Stats() PlacerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.PerTarget = append([]int64(nil), p.stats.PerTarget...)
	return st
}

// isAlive reports whether a leaf is fully alive (not restarting).
func isAlive(st leaf.Stats, err error) bool {
	return err == nil && st.State == leaf.StateAlive
}

// isAccepting reports whether a leaf can take adds at all (alive or in disk
// recovery, §4.1).
func isAccepting(st leaf.Stats, err error) bool {
	return err == nil && (st.State == leaf.StateAlive || st.State == leaf.StateDiskRecovery)
}

// Place sends one batch to a leaf per the two-choice policy and returns the
// chosen target index.
func (p *Placer) Place(table string, rows []rowblock.Row) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.targets) == 0 {
		return -1, ErrNoTarget
	}
	p.stats.Batches++

	var recoveryCandidate = -1
	for try := 0; try < p.MaxTries; try++ {
		i := p.rng.Intn(len(p.targets))
		if p.Policy == PolicyRandom {
			// Ablation baseline: one uniformly random probe per try,
			// ignoring free memory entirely.
			si, erri := p.targets[i].Stats()
			if isAlive(si, erri) {
				p.stats.OneAlive++
				return i, p.send(i, table, rows)
			}
			p.stats.RetriedPairs++
			if recoveryCandidate < 0 && isAccepting(si, erri) {
				recoveryCandidate = i
			}
			continue
		}
		j := p.rng.Intn(len(p.targets))
		for len(p.targets) > 1 && j == i {
			j = p.rng.Intn(len(p.targets))
		}
		si, erri := p.targets[i].Stats()
		sj, errj := p.targets[j].Stats()
		iAlive, jAlive := isAlive(si, erri), isAlive(sj, errj)
		switch {
		case iAlive && jAlive:
			pick := i
			if sj.FreeMemory > si.FreeMemory {
				pick = j
			}
			p.stats.BothAlive++
			return pick, p.send(pick, table, rows)
		case iAlive:
			p.stats.OneAlive++
			return i, p.send(i, table, rows)
		case jAlive:
			p.stats.OneAlive++
			return j, p.send(j, table, rows)
		default:
			p.stats.RetriedPairs++
			if recoveryCandidate < 0 {
				if isAccepting(si, erri) {
					recoveryCandidate = i
				} else if isAccepting(sj, errj) {
					recoveryCandidate = j
				}
			}
		}
	}
	// After enough tries, send the data to a restarting server (§2).
	if recoveryCandidate >= 0 {
		p.stats.SentToRecovery++
		return recoveryCandidate, p.send(recoveryCandidate, table, rows)
	}
	// Last resort: probe every target once for anything accepting.
	for i := range p.targets {
		if st, err := p.targets[i].Stats(); isAccepting(st, err) {
			p.stats.SentToRecovery++
			return i, p.send(i, table, rows)
		}
	}
	return -1, ErrNoTarget
}

func (p *Placer) send(idx int, table string, rows []rowblock.Row) error {
	if err := p.targets[idx].AddRows(table, rows); err != nil {
		return err
	}
	p.stats.RowsPlaced += int64(len(rows))
	p.stats.PerTarget[idx]++
	return nil
}

// Config configures a tailer loop.
type Config struct {
	// Category is the Scribe category to tail; Table is the Scuba table the
	// rows land in (usually the same name).
	Category string
	Table    string
	// BatchRows flushes a batch every N rows (default 1000).
	BatchRows int
	// FlushInterval flushes a partial batch after this long (default 1s).
	FlushInterval time.Duration
	// PollBatch bounds one Scribe read (default = BatchRows).
	PollBatch int
	// Checkpoint, when set, is loaded at construction (overriding the
	// offset argument) and saved after every successful drain, so a
	// restarted tailer resumes where its predecessor stopped.
	Checkpoint *Checkpoint
	// Metrics, when non-nil, receives tailer instrumentation: the
	// tailer.rows_placed counter and tailer.errors counter, tailer.rows_lost
	// / tailer.rows_bad gauges (cumulative), and the tailer.drain timer.
	Metrics *metrics.Registry
}

// Tailer pumps one category from Scribe into the cluster.
type Tailer struct {
	cfg    Config
	reader *scribe.Tailer
	placer BatchPlacer

	// RowsLost counts rows dropped by Scribe retention.
	RowsLost int64
	// RowsBad counts undecodable payloads.
	RowsBad int64
}

// New creates a tailer reading from offset. The source may be an in-process
// scribe.Bus or a network scribe.Client.
func New(cfg Config, bus scribe.Source, placer BatchPlacer, offset int64) *Tailer {
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 1000
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Second
	}
	if cfg.PollBatch <= 0 {
		cfg.PollBatch = cfg.BatchRows
	}
	if cfg.Table == "" {
		cfg.Table = cfg.Category
	}
	if cfg.Checkpoint != nil {
		if saved := cfg.Checkpoint.Load(); saved > offset {
			offset = saved
		}
	}
	return &Tailer{cfg: cfg, reader: scribe.NewTailer(bus, cfg.Category, offset), placer: placer}
}

// DrainOnce pulls everything currently in the category and places it in
// batches, returning rows placed. It is the synchronous building block for
// tests, benchmarks and the simulator; Run wraps it in a loop.
func (t *Tailer) DrainOnce() (placed int, err error) {
	if r := t.cfg.Metrics; r != nil {
		start := time.Now()
		defer func() {
			r.Counter("tailer.rows_placed").Add(int64(placed))
			r.Gauge("tailer.rows_lost").Set(t.RowsLost)
			r.Gauge("tailer.rows_bad").Set(t.RowsBad)
			r.Timer("tailer.drain").Observe(time.Since(start))
			if err != nil {
				r.Counter("tailer.errors").Add(1)
			}
		}()
	}
	var batch []rowblock.Row
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := t.placer.Place(t.cfg.Table, batch); err != nil {
			return err
		}
		placed += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		msgs, lost, err := t.reader.Poll(t.cfg.PollBatch)
		if err != nil {
			return placed, err
		}
		t.RowsLost += lost
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			row, err := DecodeRow(m.Payload)
			if err != nil {
				t.RowsBad++
				continue
			}
			batch = append(batch, row)
			if len(batch) >= t.cfg.BatchRows {
				if err := flush(); err != nil {
					return placed, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return placed, err
	}
	if t.cfg.Checkpoint != nil {
		if err := t.cfg.Checkpoint.Save(t.reader.Offset()); err != nil {
			return placed, err
		}
	}
	return placed, nil
}

// Run pumps until stop is closed, flushing every N rows or t seconds (§2).
func (t *Tailer) Run(stop <-chan struct{}) error {
	ticker := time.NewTicker(t.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			_, err := t.DrainOnce()
			return err
		case <-ticker.C:
			if _, err := t.DrainOnce(); err != nil && !errors.Is(err, ErrNoTarget) {
				return err
			}
		}
	}
}
