package tailer

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Checkpoint persists a tailer's Scribe offset so a restarted tailer
// process resumes exactly where its predecessor stopped. Tailers restart
// during the same weekly code rollovers the leaves do; without a checkpoint
// every tailer restart would replay (duplicate) or skip (lose) rows.
//
// The file holds the offset and a CRC, written atomically (temp + rename),
// so a torn write yields "no checkpoint" — the tailer then starts from the
// oldest retained message, duplicating at most the retention window, which
// matches Scuba's at-least-approximate delivery posture.
type Checkpoint struct {
	path string
}

// NewCheckpoint names the checkpoint file.
func NewCheckpoint(path string) *Checkpoint { return &Checkpoint{path: path} }

var cpTable = crc32.MakeTable(crc32.Castagnoli)

// Load returns the saved offset, or 0 when no valid checkpoint exists.
func (c *Checkpoint) Load() int64 {
	b, err := os.ReadFile(c.path)
	if err != nil || len(b) != 12 {
		return 0
	}
	off := int64(binary.LittleEndian.Uint64(b))
	sum := binary.LittleEndian.Uint32(b[8:])
	if crc32.Checksum(b[:8], cpTable) != sum || off < 0 {
		return 0
	}
	return off
}

// Save atomically and durably records the offset: the temp file is fsynced
// before the rename and the directory after it, so a machine crash (not just
// a process crash) right after Save still finds this offset — a rename alone
// survives only the process dying, not the page cache.
func (c *Checkpoint) Save(offset int64) error {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:], uint64(offset))
	binary.LittleEndian.PutUint32(b[8:], crc32.Checksum(b[:8], cpTable))
	tmp := c.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("tailer: write checkpoint: %w", err)
	}
	if _, err := f.Write(b[:]); err != nil {
		f.Close()
		return fmt.Errorf("tailer: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("tailer: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("tailer: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("tailer: install checkpoint: %w", err)
	}
	if d, err := os.Open(filepath.Dir(c.path)); err == nil {
		d.Sync() //nolint:errcheck // best-effort on filesystems without dir fsync
		d.Close()
	}
	return nil
}
