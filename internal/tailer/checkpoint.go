package tailer

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Checkpoint persists a tailer's Scribe offset so a restarted tailer
// process resumes exactly where its predecessor stopped. Tailers restart
// during the same weekly code rollovers the leaves do; without a checkpoint
// every tailer restart would replay (duplicate) or skip (lose) rows.
//
// The file holds the offset and a CRC, written atomically (temp + rename),
// so a torn write yields "no checkpoint" — the tailer then starts from the
// oldest retained message, duplicating at most the retention window, which
// matches Scuba's at-least-approximate delivery posture.
type Checkpoint struct {
	path string
}

// NewCheckpoint names the checkpoint file.
func NewCheckpoint(path string) *Checkpoint { return &Checkpoint{path: path} }

var cpTable = crc32.MakeTable(crc32.Castagnoli)

// Load returns the saved offset, or 0 when no valid checkpoint exists.
func (c *Checkpoint) Load() int64 {
	b, err := os.ReadFile(c.path)
	if err != nil || len(b) != 12 {
		return 0
	}
	off := int64(binary.LittleEndian.Uint64(b))
	sum := binary.LittleEndian.Uint32(b[8:])
	if crc32.Checksum(b[:8], cpTable) != sum || off < 0 {
		return 0
	}
	return off
}

// Save atomically records the offset.
func (c *Checkpoint) Save(offset int64) error {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:], uint64(offset))
	binary.LittleEndian.PutUint32(b[8:], crc32.Checksum(b[:8], cpTable))
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, b[:], 0o644); err != nil {
		return fmt.Errorf("tailer: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("tailer: install checkpoint: %w", err)
	}
	return nil
}
