package tailer

import (
	"errors"
	"fmt"
	"testing"

	"scuba/internal/disk"
	"scuba/internal/leaf"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/scribe"
	"scuba/internal/shm"
)

// leafTarget adapts *leaf.Leaf to the Target interface.
type leafTarget struct{ l *leaf.Leaf }

func (t leafTarget) Stats() (leaf.Stats, error) { return t.l.Stats(), nil }
func (t leafTarget) AddRows(table string, rows []rowblock.Row) error {
	return t.l.AddRows(table, rows)
}

func newLeaf(t *testing.T, id int, budget int64) *leaf.Leaf {
	t.Helper()
	l, err := leaf.New(leaf.Config{
		ID:           id,
		Shm:          shm.Options{Dir: t.TempDir(), Namespace: "test"},
		DiskRoot:     t.TempDir(),
		DiskFormat:   disk.FormatRow,
		MemoryBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRowCodecRoundTrip(t *testing.T) {
	r := rowblock.Row{
		Time: 1234,
		Cols: map[string]rowblock.Value{
			"s":   rowblock.StringValue("hello"),
			"i":   rowblock.Int64Value(-7),
			"f":   rowblock.Float64Value(2.5),
			"set": rowblock.SetValue("a", "b"),
		},
	}
	b, err := EncodeRow(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != 1234 || got.Cols["s"].Str != "hello" || got.Cols["i"].Int != -7 ||
		got.Cols["f"].Float != 2.5 || len(got.Cols["set"].Set) != 2 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeRow([]byte("garbage")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestPlacerPrefersMoreFreeMemory(t *testing.T) {
	big := newLeaf(t, 0, 1<<40)
	small := newLeaf(t, 1, 1) // effectively no free memory
	p := NewPlacer([]Target{leafTarget{big}, leafTarget{small}}, 42)
	rows := []rowblock.Row{{Time: 1}}
	for i := 0; i < 20; i++ {
		idx, err := p.Place("t", rows)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 0 {
			t.Fatalf("batch %d went to the full leaf", i)
		}
	}
	st := p.Stats()
	if st.BothAlive != 20 || st.PerTarget[0] != 20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPlacerAvoidsDeadLeaf(t *testing.T) {
	alive := newLeaf(t, 0, 1<<30)
	dead := newLeaf(t, 1, 1<<30)
	if _, err := dead.Shutdown(); err != nil {
		t.Fatal(err)
	}
	p := NewPlacer([]Target{leafTarget{alive}, leafTarget{dead}}, 7)
	for i := 0; i < 10; i++ {
		idx, err := p.Place("t", []rowblock.Row{{Time: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if idx != 0 {
			t.Fatal("batch sent to exited leaf")
		}
	}
}

func TestPlacerFallsBackToRecoveringLeaf(t *testing.T) {
	// All leaves down except one in DISK_RECOVERY: after enough tries the
	// batch goes there (§2).
	rec := recoveringTarget{}
	p := NewPlacer([]Target{deadTarget{}, rec, deadTarget{}}, 3)
	idx, err := p.Place("t", []rowblock.Row{{Time: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("idx = %d", idx)
	}
	if p.Stats().SentToRecovery != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestPlacerNoTargets(t *testing.T) {
	p := NewPlacer(nil, 1)
	if _, err := p.Place("t", []rowblock.Row{{Time: 1}}); !errors.Is(err, ErrNoTarget) {
		t.Errorf("err = %v", err)
	}
	p2 := NewPlacer([]Target{deadTarget{}, deadTarget{}}, 1)
	if _, err := p2.Place("t", []rowblock.Row{{Time: 1}}); !errors.Is(err, ErrNoTarget) {
		t.Errorf("err = %v", err)
	}
}

type deadTarget struct{}

func (deadTarget) Stats() (leaf.Stats, error) { return leaf.Stats{State: leaf.StateExit}, nil }
func (deadTarget) AddRows(string, []rowblock.Row) error {
	return errors.New("dead")
}

type recoveringTarget struct{}

func (recoveringTarget) Stats() (leaf.Stats, error) {
	return leaf.Stats{State: leaf.StateDiskRecovery}, nil
}
func (recoveringTarget) AddRows(string, []rowblock.Row) error { return nil }

func TestPlacerBalance(t *testing.T) {
	// E10: with equal capacity, two-random-choice spreads batches evenly.
	const n = 8
	targets := make([]Target, n)
	leaves := make([]*leaf.Leaf, n)
	for i := range targets {
		leaves[i] = newLeaf(t, i, 1<<40)
		targets[i] = leafTarget{leaves[i]}
	}
	p := NewPlacer(targets, 99)
	rows := make([]rowblock.Row, 10)
	for i := range rows {
		rows[i] = rowblock.Row{Time: int64(i), Cols: map[string]rowblock.Value{
			"v": rowblock.Int64Value(int64(i)),
		}}
	}
	const batches = 800
	for i := 0; i < batches; i++ {
		if _, err := p.Place("t", rows); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	for i, c := range st.PerTarget {
		if c < batches/n/2 || c > batches/n*2 {
			t.Errorf("target %d got %d of %d batches (unbalanced)", i, c, batches)
		}
	}
	if st.RowsPlaced != batches*10 {
		t.Errorf("rows placed = %d", st.RowsPlaced)
	}
}

func TestPolicyRandomIgnoresFreeMemory(t *testing.T) {
	big := newLeaf(t, 0, 1<<40)
	small := newLeaf(t, 1, 1)
	p := NewPlacer([]Target{leafTarget{big}, leafTarget{small}}, 42)
	p.Policy = PolicyRandom
	counts := [2]int{}
	for i := 0; i < 200; i++ {
		idx, err := p.Place("t", []rowblock.Row{{Time: 1}})
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	// Uniform random: the full leaf still receives roughly half the load —
	// exactly the imbalance two-random-choice avoids.
	if counts[1] < 50 {
		t.Errorf("random policy sent only %d/200 batches to the full leaf", counts[1])
	}
}

func TestPolicyRandomSkipsDeadLeaves(t *testing.T) {
	alive := newLeaf(t, 0, 1<<30)
	p := NewPlacer([]Target{deadTarget{}, leafTarget{alive}, deadTarget{}}, 3)
	p.Policy = PolicyRandom
	p.MaxTries = 16
	for i := 0; i < 20; i++ {
		idx, err := p.Place("t", []rowblock.Row{{Time: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("batch sent to dead target %d", idx)
		}
	}
}

func TestTailerDrainEndToEnd(t *testing.T) {
	bus := scribe.NewBus(0)
	l := newLeaf(t, 0, 1<<40)
	p := NewPlacer([]Target{leafTarget{l}}, 5)
	// Produce 2500 events.
	for i := 0; i < 2500; i++ {
		row := rowblock.Row{Time: int64(1000 + i), Cols: map[string]rowblock.Value{
			"service": rowblock.StringValue(fmt.Sprintf("svc-%d", i%3)),
		}}
		payload, err := EncodeRow(row)
		if err != nil {
			t.Fatal(err)
		}
		bus.Append("events", payload)
	}
	tl := New(Config{Category: "events", BatchRows: 100}, bus, p, 0)
	placed, err := tl.DrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if placed != 2500 {
		t.Errorf("placed = %d", placed)
	}
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.Rows(q); len(rows) == 0 || rows[0].Values[0] != 2500 {
		t.Errorf("count = %v", rows)
	}
	// Draining again finds nothing new.
	placed, err = tl.DrainOnce()
	if err != nil || placed != 0 {
		t.Errorf("second drain: %d, %v", placed, err)
	}
}

func TestTailerSkipsBadPayloads(t *testing.T) {
	bus := scribe.NewBus(0)
	l := newLeaf(t, 0, 1<<40)
	p := NewPlacer([]Target{leafTarget{l}}, 5)
	good, err := EncodeRow(rowblock.Row{Time: 1})
	if err != nil {
		t.Fatal(err)
	}
	bus.Append("c", []byte("junk"))
	bus.Append("c", good)
	bus.Append("c", []byte{0xff, 0x00})
	tl := New(Config{Category: "c", Table: "t"}, bus, p, 0)
	placed, err := tl.DrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if placed != 1 || tl.RowsBad != 2 {
		t.Errorf("placed %d bad %d", placed, tl.RowsBad)
	}
}

func TestTailerCountsLostRows(t *testing.T) {
	bus := scribe.NewBus(3)
	l := newLeaf(t, 0, 1<<40)
	p := NewPlacer([]Target{leafTarget{l}}, 5)
	for i := 0; i < 10; i++ {
		b, err := EncodeRow(rowblock.Row{Time: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		bus.Append("c", b)
	}
	tl := New(Config{Category: "c", Table: "t"}, bus, p, 0)
	placed, err := tl.DrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if placed != 3 || tl.RowsLost != 7 {
		t.Errorf("placed %d lost %d", placed, tl.RowsLost)
	}
}
