//go:build !linux

package shm

// Non-Linux builds always use the heap-backed fallback; the shared file
// still carries the data across processes.

func (s *Segment) mapIn() error { return s.loadFallback() }

func (s *Segment) mapOut() error { return s.storeFallback() }

func (s *Segment) sync() error { return s.storeFallback() }
