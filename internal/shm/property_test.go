package shm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"scuba/internal/rowblock"
)

// TestTableSegmentProperty round-trips randomized table contents through a
// segment: random block counts, row counts, schemas and values must come
// back exactly, in order, for both mmap and fallback modes.
func TestTableSegmentProperty(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		rng := rand.New(rand.NewSource(321))
		for trial := 0; trial < 15; trial++ {
			m := newTestManager(t, trial, noMmap)
			nblocks := 1 + rng.Intn(5)
			blocks := make([]*rowblock.RowBlock, nblocks)
			for bi := range blocks {
				builder := rowblock.NewBuilder(rng.Int63n(1 << 40))
				rows := 1 + rng.Intn(400)
				for r := 0; r < rows; r++ {
					row := rowblock.Row{Time: rng.Int63n(1 << 40), Cols: map[string]rowblock.Value{}}
					if rng.Intn(2) == 0 {
						row.Cols["s"] = rowblock.StringValue(fmt.Sprintf("v%d", rng.Intn(50)))
					}
					if rng.Intn(2) == 0 {
						row.Cols["n"] = rowblock.Int64Value(rng.Int63() - rng.Int63())
					}
					if rng.Intn(4) == 0 {
						row.Cols["f"] = rowblock.Float64Value(rng.NormFloat64())
					}
					if err := builder.AddRow(row); err != nil {
						t.Fatal(err)
					}
				}
				rb, err := builder.Seal()
				if err != nil {
					t.Fatal(err)
				}
				blocks[bi] = rb
			}

			// Deliberately bad estimate half the time, to exercise Grow.
			estimate := int64(1024)
			if rng.Intn(2) == 0 {
				for _, rb := range blocks {
					estimate += int64(rb.ImageSize())
				}
			}
			w, err := CreateTableSegment(m, "tbl-p", "p", estimate)
			if err != nil {
				t.Fatal(err)
			}
			for _, rb := range blocks {
				if err := w.WriteBlock(rb, false); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Finish(); err != nil {
				t.Fatal(err)
			}

			r, err := OpenTableSegment(m, "tbl-p")
			if err != nil {
				t.Fatal(err)
			}
			var restored []*rowblock.RowBlock
			for {
				rb, err := r.ReadBlock()
				if err != nil {
					t.Fatal(err)
				}
				if rb == nil {
					break
				}
				restored = append(restored, rb)
			}
			if err := r.Close(true); err != nil {
				t.Fatal(err)
			}
			if len(restored) != nblocks {
				t.Fatalf("trial %d: %d blocks back, want %d", trial, len(restored), nblocks)
			}
			for i := range restored {
				orig := blocks[nblocks-1-i] // reverse drain order
				got := restored[i]
				if got.Header() != orig.Header() {
					t.Fatalf("trial %d block %d: header %+v != %+v", trial, i, got.Header(), orig.Header())
				}
				gt, _ := got.Times()
				ot, _ := orig.Times()
				if !reflect.DeepEqual(gt, ot) {
					t.Fatalf("trial %d block %d: times differ", trial, i)
				}
			}
		}
	})
}
