package shm

import (
	"fmt"
	"io"
	"unsafe"
)

// unsafePointer returns the address of a byte slice's backing array for the
// raw msync syscall.
func unsafePointer(b []byte) unsafe.Pointer {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Pointer(&b[0])
}

// loadFallback reads the whole backing file into a heap buffer. Used when
// mmap is disabled; cross-process semantics still hold because storeFallback
// writes the buffer back to the shared file.
func (s *Segment) loadFallback() error {
	buf := make([]byte, s.size)
	if _, err := s.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return fmt.Errorf("shm: read segment %s: %w", s.name, err)
	}
	s.data = buf
	return nil
}

// storeFallback writes the heap buffer back to the file.
func (s *Segment) storeFallback() error {
	if s.data == nil {
		return nil
	}
	if s.ro {
		// Read-only views never dirty the buffer; skip the write-back (the
		// fd was opened O_RDONLY and would reject it anyway).
		s.data = nil
		return nil
	}
	if _, err := s.f.WriteAt(s.data[:min(int64(len(s.data)), s.size)], 0); err != nil {
		return fmt.Errorf("shm: write segment %s: %w", s.name, err)
	}
	if int64(len(s.data)) != s.size {
		s.data = nil // force reload at the new size
	}
	return nil
}
