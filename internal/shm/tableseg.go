package shm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"scuba/internal/fault"
	"scuba/internal/rowblock"
)

// Table segment layout (Figure 4). One shared memory segment per table.
// Because the full set of row blocks and their sizes is known at backup
// time, blocks are laid out contiguously — one less level of indirection
// than the heap layout:
//
//	u32  magic "SGT1"
//	u32  shm layout version
//	u64  payload start (offset of the first block image)
//	u64  footer offset (end of payload, patched by Finish)
//	u32  number of row blocks (patched by Finish)
//	u32  payload CRC-32C over [payload start, footer end) (patched by Finish)
//	u16  table name length
//	...  table name bytes
//	...  row block images, contiguous (see rowblock.AppendImage)
//	footer: u64 per block — offset of each block image
//
// The footer lets the restore path drain the segment in reverse, truncating
// the tail after each block so tmpfs pages are released as the data moves
// back to the heap, keeping the total footprint flat (§4.4, Figure 7).
//
// The payload CRC covers every block image and the footer. Row blocks carry
// their own per-column checksums, but those are only verified as each block
// is decoded — a flipped byte in table N's data would otherwise surface
// mid-restore, after earlier tables were already installed. Verifying the
// whole payload when the segment is opened turns data rot into an up-front
// quarantine decision for exactly the damaged table.

// SegMagic identifies a table segment.
const SegMagic uint32 = 0x31544753 // "SGT1"

const segHeaderFixed = 4 + 4 + 8 + 8 + 4 + 4 + 2

// ErrSegCorrupt is returned for structurally invalid table segments.
var ErrSegCorrupt = fmt.Errorf("shm: corrupt table segment")

var segCRCTable = crc32.MakeTable(crc32.Castagnoli)

// TableSegmentWriter streams a table's row blocks into a segment, one row
// block column at a time (Figure 6).
//
// A writer is single-goroutine: the parallel shutdown path gives each worker
// its own writer over its own segment. Distinct writers over distinct
// segment names are safe to drive concurrently — CreateTableSegment touches
// only the segment's own file. Finish and Abort are terminal: WriteBlock or
// Finish after either returns ErrClosed instead of touching unmapped memory,
// and Abort is idempotent (Abort after Finish is a no-op, so error paths can
// abort every writer unconditionally).
type TableSegmentWriter struct {
	seg          *Segment
	payloadStart int64
	pos          int64
	offsets      []int64
	// BytesCopied counts payload bytes written, for bandwidth accounting.
	BytesCopied int64

	finished bool
	aborted  bool
}

// Name returns the segment name the writer targets.
func (w *TableSegmentWriter) Name() string { return w.seg.Name() }

// CreateTableSegment creates a segment sized by estimate (Figure 6:
// "estimate size of table"); WriteBlock grows it as needed.
func CreateTableSegment(m *Manager, segName, tableName string, estimate int64) (*TableSegmentWriter, error) {
	headerSize := int64(segHeaderFixed + len(tableName))
	size := headerSize + estimate
	if size < headerSize+1024 {
		size = headerSize + 1024
	}
	seg, err := m.CreateSegment(segName, size)
	if err != nil {
		return nil, err
	}
	b := seg.Bytes()
	binary.LittleEndian.PutUint32(b[0:], SegMagic)
	binary.LittleEndian.PutUint32(b[4:], LayoutVersion)
	binary.LittleEndian.PutUint64(b[8:], uint64(headerSize))
	binary.LittleEndian.PutUint64(b[16:], uint64(headerSize)) // patched by Finish
	binary.LittleEndian.PutUint32(b[24:], 0)                  // patched by Finish
	binary.LittleEndian.PutUint32(b[28:], 0)                  // payload CRC, patched by Finish
	binary.LittleEndian.PutUint16(b[32:], uint16(len(tableName)))
	copy(b[segHeaderFixed:], tableName)
	return &TableSegmentWriter{seg: seg, payloadStart: headerSize, pos: headerSize}, nil
}

// WriteBlock copies one row block into the segment column by column. When
// release is true each heap column is dropped right after its copy, so the
// block's memory is reclaimed incrementally (Figure 6 pseudocode).
func (w *TableSegmentWriter) WriteBlock(rb *rowblock.RowBlock, release bool) error {
	if w.finished || w.aborted {
		return fmt.Errorf("%w: WriteBlock on %s segment writer", ErrClosed, w.stateName())
	}
	if err := fault.Inject(fault.SiteShmCopyOut); err != nil {
		return fmt.Errorf("shm: copy out to %s: %w", w.seg.Name(), err)
	}
	imageSize := int64(rb.ImageSize()) // before columns are released
	need := w.pos + imageSize
	if need > w.seg.Size() {
		// Figure 6: "grow the table segment in size if needed".
		newSize := w.seg.Size() + w.seg.Size()/2
		if newSize < need {
			newSize = need
		}
		if err := w.seg.Grow(newSize); err != nil {
			return err
		}
	}
	iw, err := rb.NewImageWriter(w.seg.Bytes()[w.pos:])
	if err != nil {
		return err
	}
	for i := 0; !iw.Done(); i++ {
		n := iw.CopyColumn()
		w.BytesCopied += int64(n)
		if release {
			rb.ReleaseColumn(i)
		}
	}
	w.offsets = append(w.offsets, w.pos)
	w.pos += imageSize
	return nil
}

// Finish writes the footer, patches the header, trims any over-allocation,
// and closes the segment. The data stays in the backing tmpfs file. Finish
// is terminal: a second Finish, or a Finish after Abort, returns ErrClosed.
func (w *TableSegmentWriter) Finish() error {
	if w.finished || w.aborted {
		return fmt.Errorf("%w: Finish on %s segment writer", ErrClosed, w.stateName())
	}
	w.finished = true
	footerOff := w.pos
	need := footerOff + int64(8*len(w.offsets))
	if need > w.seg.Size() {
		if err := w.seg.Grow(need); err != nil {
			return err
		}
	}
	b := w.seg.Bytes()
	for i, off := range w.offsets {
		binary.LittleEndian.PutUint64(b[footerOff+int64(8*i):], uint64(off))
	}
	binary.LittleEndian.PutUint64(b[16:], uint64(footerOff))
	binary.LittleEndian.PutUint32(b[24:], uint32(len(w.offsets)))
	binary.LittleEndian.PutUint32(b[28:], crc32.Checksum(b[w.payloadStart:need], segCRCTable))
	// An armed copy_out corruption flips payload bytes after the CRC is
	// stamped — the same damage as memory rot between commit and restore —
	// so the restore side must detect it and quarantine the table.
	fault.CorruptBytes(fault.SiteShmCopyOut, b[w.payloadStart:need])
	if err := w.seg.Sync(); err != nil {
		return err
	}
	if need < w.seg.Size() {
		if err := w.seg.Truncate(need); err != nil {
			return err
		}
	}
	return w.seg.Close()
}

// Abort closes the segment without finishing; the caller removes it. Abort
// is idempotent, and aborting an already-finished writer is a no-op, so a
// failed multi-table shutdown can abort every writer it created — including
// those of tables whose copy had already finished.
func (w *TableSegmentWriter) Abort() error {
	if w.finished || w.aborted {
		return nil
	}
	w.aborted = true
	return w.seg.Close()
}

func (w *TableSegmentWriter) stateName() string {
	if w.aborted {
		return "aborted"
	}
	return "finished"
}

// TableSegmentReader drains a table segment back to the heap, last block
// first, truncating the segment as it goes (Figure 7).
type TableSegmentReader struct {
	m         *Manager
	seg       *Segment
	tableName string
	offsets   []int64
	remaining int
}

// OpenTableSegment validates a segment's header, footer, and payload CRC
// for restore. A CRC mismatch means block data rotted while the segment sat
// in shared memory; the caller quarantines the table to disk recovery.
func OpenTableSegment(m *Manager, segName string) (*TableSegmentReader, error) {
	if err := fault.Inject(fault.SiteShmMap); err != nil {
		return nil, fmt.Errorf("shm: map segment %s: %w", segName, err)
	}
	seg, err := m.OpenSegment(segName)
	if err != nil {
		return nil, err
	}
	r := &TableSegmentReader{m: m, seg: seg}
	if err := r.parseHeader(); err != nil {
		seg.Close()
		return nil, err
	}
	return r, nil
}

func (r *TableSegmentReader) parseHeader() error {
	tableName, offsets, err := parseTableSegment(r.seg.Bytes())
	if err != nil {
		return err
	}
	r.tableName = tableName
	r.offsets = offsets
	r.remaining = len(offsets)
	return nil
}

// parseTableSegment validates a table segment's header, footer, and
// whole-payload CRC, returning the table name and the block image offsets.
// Shared by the draining reader (copy-in) and the mapped view (instant-on).
func parseTableSegment(b []byte) (string, []int64, error) {
	if len(b) < segHeaderFixed {
		return "", nil, fmt.Errorf("%w: %d bytes", ErrSegCorrupt, len(b))
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != SegMagic {
		return "", nil, fmt.Errorf("%w: magic %08x", ErrSegCorrupt, m)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != LayoutVersion {
		return "", nil, fmt.Errorf("%w: segment version %d, code version %d", ErrVersionSkew, v, LayoutVersion)
	}
	payloadStart := int64(binary.LittleEndian.Uint64(b[8:]))
	footerOff := int64(binary.LittleEndian.Uint64(b[16:]))
	nblocks := int(binary.LittleEndian.Uint32(b[24:]))
	payloadCRC := binary.LittleEndian.Uint32(b[28:])
	nameLen := int(binary.LittleEndian.Uint16(b[32:]))
	if payloadStart != int64(segHeaderFixed+nameLen) ||
		footerOff < payloadStart ||
		footerOff+int64(8*nblocks) > int64(len(b)) {
		return "", nil, fmt.Errorf("%w: payload=%d footer=%d blocks=%d len=%d",
			ErrSegCorrupt, payloadStart, footerOff, nblocks, len(b))
	}
	if sum := checksumParallel(b[payloadStart : footerOff+int64(8*nblocks)]); sum != payloadCRC {
		return "", nil, fmt.Errorf("%w: payload checksum %08x, header says %08x",
			ErrSegCorrupt, sum, payloadCRC)
	}
	tableName := string(b[segHeaderFixed : segHeaderFixed+nameLen])
	offsets := make([]int64, nblocks)
	prev := payloadStart
	for i := 0; i < nblocks; i++ {
		off := int64(binary.LittleEndian.Uint64(b[footerOff+int64(8*i):]))
		if off < prev || off >= footerOff {
			return "", nil, fmt.Errorf("%w: block %d offset %d", ErrSegCorrupt, i, off)
		}
		offsets[i] = off
		prev = off
	}
	return tableName, offsets, nil
}

// TableName returns the table this segment belongs to.
func (r *TableSegmentReader) TableName() string { return r.tableName }

// NumBlocks returns the total number of row blocks in the segment.
func (r *TableSegmentReader) NumBlocks() int { return len(r.offsets) }

// Remaining returns how many blocks have not been read yet.
func (r *TableSegmentReader) Remaining() int { return r.remaining }

// ReadBlock copies the next block (in reverse order) to fresh heap memory,
// verifies its checksums, truncates the segment to release the pages, and
// returns the block. Returns nil when the segment is drained.
func (r *TableSegmentReader) ReadBlock() (*rowblock.RowBlock, error) {
	if r.remaining == 0 {
		return nil, nil
	}
	if err := fault.Inject(fault.SiteShmCopyIn); err != nil {
		return nil, fmt.Errorf("shm: copy in from %s: %w", r.seg.Name(), err)
	}
	idx := r.remaining - 1
	off := r.offsets[idx]
	// An armed copy_in corruption damages the mapped image after the
	// open-time CRC check passed; the row block's own per-column checksums
	// are the last line of defense.
	fault.CorruptBytes(fault.SiteShmCopyIn, r.seg.Bytes()[off:])
	rb, _, err := rowblock.DecodeImage(r.seg.Bytes()[off:], true)
	if err != nil {
		return nil, fmt.Errorf("shm: block %d of %s: %w", idx, r.tableName, err)
	}
	r.remaining--
	// Figure 7: "truncate the table shared memory segment if needed" —
	// drop the consumed tail so physical pages are released while the heap
	// side grows, keeping total footprint flat.
	if err := r.seg.Truncate(off); err != nil {
		return nil, err
	}
	return rb, nil
}

// Close closes and deletes the segment (Figure 7 deletes each table segment
// after restoring it).
func (r *TableSegmentReader) Close(remove bool) error {
	err := r.seg.Close()
	if remove {
		if rerr := r.m.RemoveSegment(r.seg.Name()); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}
