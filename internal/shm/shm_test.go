package shm

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestManager(t *testing.T, leafID int, disableMmap bool) *Manager {
	t.Helper()
	return NewManager(leafID, Options{Dir: t.TempDir(), Namespace: "test", DisableMmap: disableMmap})
}

// runBothModes runs a subtest under real mmap and under the fallback.
func runBothModes(t *testing.T, fn func(t *testing.T, disableMmap bool)) {
	t.Run("mmap", func(t *testing.T) { fn(t, false) })
	t.Run("fallback", func(t *testing.T) { fn(t, true) })
}

func TestSegmentCreateWriteReopen(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		dir := t.TempDir()
		m := NewManager(3, Options{Dir: dir, Namespace: "test", DisableMmap: noMmap})
		seg, err := m.CreateSegment("s1", 4096)
		if err != nil {
			t.Fatal(err)
		}
		copy(seg.Bytes(), "hello shared memory")
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
		// A "new process": fresh manager over the same directory.
		m2 := NewManager(3, Options{Dir: dir, Namespace: "test", DisableMmap: noMmap})
		seg2, err := m2.OpenSegment("s1")
		if err != nil {
			t.Fatal(err)
		}
		defer seg2.Close()
		if !bytes.HasPrefix(seg2.Bytes(), []byte("hello shared memory")) {
			t.Error("data did not survive close/reopen")
		}
		if seg2.Size() != 4096 {
			t.Errorf("size = %d", seg2.Size())
		}
	})
}

func TestSegmentGrowPreservesData(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		m := newTestManager(t, 1, noMmap)
		seg, err := m.CreateSegment("g", 4096)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		copy(seg.Bytes(), "persistent prefix")
		if err := seg.Grow(65536); err != nil {
			t.Fatal(err)
		}
		if seg.Size() != 65536 {
			t.Errorf("size = %d", seg.Size())
		}
		if !bytes.HasPrefix(seg.Bytes(), []byte("persistent prefix")) {
			t.Error("grow lost data")
		}
		// Growing smaller is a no-op.
		if err := seg.Grow(100); err != nil || seg.Size() != 65536 {
			t.Errorf("shrinking grow: %v, size %d", err, seg.Size())
		}
	})
}

func TestSegmentTruncate(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		m := newTestManager(t, 1, noMmap)
		seg, err := m.CreateSegment("tr", 8192)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		copy(seg.Bytes(), "keep this part")
		if err := seg.Truncate(4096); err != nil {
			t.Fatal(err)
		}
		if seg.Size() != 4096 {
			t.Errorf("size = %d", seg.Size())
		}
		if !bytes.HasPrefix(seg.Bytes(), []byte("keep this part")) {
			t.Error("truncate lost retained data")
		}
		// Truncate to zero keeps a 1-byte mapping alive.
		if err := seg.Truncate(0); err != nil {
			t.Fatal(err)
		}
		if seg.Size() != 1 {
			t.Errorf("size after truncate-to-zero = %d", seg.Size())
		}
	})
}

func TestSegmentClosedOperations(t *testing.T) {
	m := newTestManager(t, 1, false)
	seg, err := m.CreateSegment("c", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := seg.Grow(2048); !errors.Is(err, ErrClosed) {
		t.Errorf("grow after close: %v", err)
	}
	if err := seg.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync after close: %v", err)
	}
}

func TestCreateSegmentBadSize(t *testing.T) {
	m := newTestManager(t, 1, false)
	if _, err := m.CreateSegment("bad", 0); !errors.Is(err, ErrSegmentSize) {
		t.Errorf("err = %v", err)
	}
	if _, err := m.CreateSegment("bad", -5); !errors.Is(err, ErrSegmentSize) {
		t.Errorf("err = %v", err)
	}
}

func TestOpenMissingSegment(t *testing.T) {
	m := newTestManager(t, 1, false)
	if _, err := m.OpenSegment("nope"); !errors.Is(err, ErrSegmentGone) {
		t.Errorf("err = %v", err)
	}
	if m.SegmentExists("nope") {
		t.Error("SegmentExists(nope) = true")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	m := newTestManager(t, 7, false)
	md := &Metadata{
		Valid:   true,
		Version: LayoutVersion,
		Created: 1700000000,
		Segments: []SegmentInfo{
			{Table: "events", Segment: "tbl-events"},
			{Table: "errors weird/name", Segment: "tbl-errors"},
		},
	}
	if err := m.WriteMetadata(md); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Valid || got.Version != LayoutVersion || got.Created != 1700000000 {
		t.Errorf("metadata = %+v", got)
	}
	if len(got.Segments) != 2 || got.Segments[1].Table != "errors weird/name" {
		t.Errorf("segments = %+v", got.Segments)
	}
}

func TestMetadataMissing(t *testing.T) {
	m := newTestManager(t, 7, false)
	if _, err := m.ReadMetadata(); !errors.Is(err, ErrNoMetadata) {
		t.Errorf("err = %v", err)
	}
	// Invalidate with no metadata is a no-op.
	if err := m.Invalidate(); err != nil {
		t.Errorf("Invalidate: %v", err)
	}
}

func TestMetadataCorruption(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(2, Options{Dir: dir, Namespace: "test"})
	md := &Metadata{Valid: true, Version: LayoutVersion, Segments: []SegmentInfo{{Table: "t", Segment: "s"}}}
	if err := m.WriteMetadata(md); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test-leaf2-meta")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := m.ReadMetadata(); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	// Truncations must also be rejected.
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := m.ReadMetadata(); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestInvalidateClearsValidBit(t *testing.T) {
	m := newTestManager(t, 4, false)
	if err := m.WriteMetadata(&Metadata{Valid: true, Version: LayoutVersion}); err != nil {
		t.Fatal(err)
	}
	if err := m.Invalidate(); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if got.Valid {
		t.Error("valid bit still set")
	}
}

func TestRemoveAll(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(5, Options{Dir: dir, Namespace: "test"})
	seg, err := m.CreateSegment("tbl-a", 1024)
	if err != nil {
		t.Fatal(err)
	}
	seg.Close()
	if err := m.WriteMetadata(&Metadata{Valid: true, Version: LayoutVersion,
		Segments: []SegmentInfo{{Table: "a", Segment: "tbl-a"}}}); err != nil {
		t.Fatal(err)
	}
	// An orphan segment not in metadata must also be cleaned up.
	orphan, err := m.CreateSegment("tbl-orphan", 1024)
	if err != nil {
		t.Fatal(err)
	}
	orphan.Close()
	// Another leaf's files must survive.
	other := NewManager(6, Options{Dir: dir, Namespace: "test"})
	oseg, err := other.CreateSegment("tbl-b", 1024)
	if err != nil {
		t.Fatal(err)
	}
	oseg.Close()

	if err := m.RemoveAll(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "test-leaf5-") {
			t.Errorf("leftover file %s", e.Name())
		}
	}
	if !other.SegmentExists("tbl-b") {
		t.Error("RemoveAll deleted another leaf's segment")
	}
}

func TestSegmentNameForTable(t *testing.T) {
	cases := map[string]string{
		"events":     "tbl-events",
		"my_table-1": "tbl-my_table-1",
		"weird/name": "tbl-weird%002fname",
		"space name": "tbl-space%0020name",
		"uniçode":    "tbl-uni%00e7ode",
	}
	for in, want := range cases {
		if got := SegmentNameForTable(in); got != want {
			t.Errorf("SegmentNameForTable(%q) = %q, want %q", in, got, want)
		}
	}
	// Distinct names must not collide.
	if SegmentNameForTable("a/b") == SegmentNameForTable("a_b") {
		t.Error("name collision")
	}
}

func TestMetadataAtomicReplace(t *testing.T) {
	// Writing new metadata over old must never leave a torn file; emulate
	// by writing twice and checking the temp file is gone.
	dir := t.TempDir()
	m := NewManager(1, Options{Dir: dir, Namespace: "test"})
	if err := m.WriteMetadata(&Metadata{Version: LayoutVersion}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMetadata(&Metadata{Version: LayoutVersion, Valid: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "test-leaf1-meta.tmp")); !os.IsNotExist(err) {
		t.Error("temp metadata file left behind")
	}
	got, err := m.ReadMetadata()
	if err != nil || !got.Valid {
		t.Errorf("read: %+v, %v", got, err)
	}
}

func TestSync(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		m := newTestManager(t, 1, noMmap)
		seg, err := m.CreateSegment("sy", 4096)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		copy(seg.Bytes(), "synced data")
		if err := seg.Sync(); err != nil {
			t.Fatal(err)
		}
	})
}
