package shm

import (
	"errors"
	"os"
	"testing"
)

func writeViewSegment(t *testing.T, m *Manager, seg, table string, nblocks int) {
	t.Helper()
	blocks := buildBlocks(t, nblocks, 200)
	var total int64
	for _, rb := range blocks {
		total += int64(rb.ImageSize())
	}
	w, err := CreateTableSegment(m, seg, table, total)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range blocks {
		if err := w.WriteBlock(rb, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestMappedViewServesAndDrains(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		m := newTestManager(t, 1, noMmap)
		writeViewSegment(t, m, "tbl-events.g7", "events", 3)

		v, err := OpenTableSegmentView(m, "tbl-events.g7")
		if err != nil {
			t.Fatal(err)
		}
		if v.TableName() != "events" || v.SegmentName() != "tbl-events.g7" {
			t.Fatalf("view identity = %q %q", v.TableName(), v.SegmentName())
		}
		if len(v.Blocks()) != 3 {
			t.Fatalf("blocks = %d", len(v.Blocks()))
		}
		if v.Refs() != 3 {
			t.Fatalf("initial refs = %d, want one per block", v.Refs())
		}
		rows := 0
		for _, rb := range v.Blocks() {
			if rb.Source() != v {
				t.Fatal("block does not carry the view as its source")
			}
			rows += rb.Rows()
		}
		if rows != 600 {
			t.Fatalf("rows = %d", rows)
		}

		// A scan pin keeps the view alive after all residency refs drop.
		if !v.Retain() {
			t.Fatal("Retain failed on live view")
		}
		for range v.Blocks() {
			v.Release()
		}
		if v.Refs() != 1 {
			t.Fatalf("refs after residency drain = %d", v.Refs())
		}
		path := m.segmentPath("tbl-events.g7")
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("segment file gone while pinned: %v", err)
		}
		v.Release()
		if v.Refs() != 0 {
			t.Fatalf("refs = %d after final release", v.Refs())
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("segment file survived the last release: %v", err)
		}
		// Retain cannot resurrect a drained view.
		if v.Retain() {
			t.Fatal("Retain succeeded on drained view")
		}
	})
}

func TestMappedViewDiscardKeepsFile(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		m := newTestManager(t, 1, noMmap)
		writeViewSegment(t, m, "tbl-a", "a", 1)
		v, err := OpenTableSegmentView(m, "tbl-a")
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Discard(); err != nil {
			t.Fatal(err)
		}
		// The file survives for a fallback reader.
		r, err := OpenTableSegment(m, "tbl-a")
		if err != nil {
			t.Fatalf("eager open after Discard: %v", err)
		}
		r.Close(true) //nolint:errcheck
	})
}

func TestMappedViewValidation(t *testing.T) {
	m := newTestManager(t, 1, false)

	// Corrupt payload: flip one byte, CRC must reject the view.
	writeViewSegment(t, m, "tbl-c", "c", 1)
	path := m.segmentPath("tbl-c")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-20] ^= 0xff
	if err := os.WriteFile(path, b, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTableSegmentView(m, "tbl-c"); !errors.Is(err, ErrSegCorrupt) {
		t.Fatalf("corrupt view open = %v, want ErrSegCorrupt", err)
	}

	// Missing segment.
	if _, err := OpenTableSegmentView(m, "tbl-missing"); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("missing view open = %v, want ErrSegmentGone", err)
	}

	// Zero-block segment: (nil, nil), file left in place.
	writeViewSegment(t, m, "tbl-empty", "empty", 0)
	v, err := OpenTableSegmentView(m, "tbl-empty")
	if err != nil || v != nil {
		t.Fatalf("empty view = %v, %v; want nil, nil", v, err)
	}
	if _, err := os.Stat(m.segmentPath("tbl-empty")); err != nil {
		t.Fatalf("empty segment file removed: %v", err)
	}
}
