//go:build linux

package shm

import (
	"fmt"
	"syscall"
)

// mapIn maps the segment: real mmap when enabled, heap fallback otherwise.
func (s *Segment) mapIn() error {
	if !s.useMmap {
		return s.loadFallback()
	}
	prot := syscall.PROT_READ | syscall.PROT_WRITE
	flags := syscall.MAP_SHARED
	if s.ro {
		prot = syscall.PROT_READ
		// Restore-side mappings are read end to end immediately (the CRC
		// validation pass touches every byte), and on the instant-on path
		// that pass IS the availability gap. Prefault the whole mapping in
		// one kernel sweep instead of eating a minor fault per page mid-CRC
		// — on tmpfs the pages are already resident, so MAP_POPULATE only
		// builds page tables.
		flags |= syscall.MAP_POPULATE
	}
	data, err := syscall.Mmap(int(s.f.Fd()), 0, int(s.size),
		prot, flags)
	if err != nil {
		return fmt.Errorf("shm: mmap %s (%d bytes): %w", s.name, s.size, err)
	}
	s.data = data
	return nil
}

// mapOut unmaps the segment. MAP_SHARED writes are visible to the file
// without an explicit flush.
func (s *Segment) mapOut() error {
	if !s.useMmap {
		return s.storeFallback()
	}
	if s.data == nil {
		return nil
	}
	err := syscall.Munmap(s.data)
	s.data = nil
	if err != nil {
		return fmt.Errorf("shm: munmap %s: %w", s.name, err)
	}
	return nil
}

func (s *Segment) sync() error {
	if !s.useMmap {
		return s.storeFallback()
	}
	// MS_SYNC through the raw syscall; the data slice is page-aligned
	// because it came from mmap.
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafePointer(s.data)), uintptr(len(s.data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("shm: msync %s: %w", s.name, errno)
	}
	return nil
}
