//go:build linux

package shm

import (
	"fmt"
	"syscall"
)

// mapIn maps the segment: real mmap when enabled, heap fallback otherwise.
func (s *Segment) mapIn() error {
	if !s.useMmap {
		return s.loadFallback()
	}
	data, err := syscall.Mmap(int(s.f.Fd()), 0, int(s.size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("shm: mmap %s (%d bytes): %w", s.name, s.size, err)
	}
	s.data = data
	return nil
}

// mapOut unmaps the segment. MAP_SHARED writes are visible to the file
// without an explicit flush.
func (s *Segment) mapOut() error {
	if !s.useMmap {
		return s.storeFallback()
	}
	if s.data == nil {
		return nil
	}
	err := syscall.Munmap(s.data)
	s.data = nil
	if err != nil {
		return fmt.Errorf("shm: munmap %s: %w", s.name, err)
	}
	return nil
}

func (s *Segment) sync() error {
	if !s.useMmap {
		return s.storeFallback()
	}
	// MS_SYNC through the raw syscall; the data slice is page-aligned
	// because it came from mmap.
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafePointer(s.data)), uintptr(len(s.data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("shm: msync %s: %w", s.name, errno)
	}
	return nil
}
