package shm

import (
	"hash/crc32"
	"math/rand"
	"testing"
)

// The parallel checksum must agree bit-for-bit with the sequential one at
// every size class: empty, sub-chunk (sequential fallback), chunk-aligned,
// ragged tail, and many-chunk.
func TestChecksumParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 100, crcParallelMinChunk - 1, crcParallelMinChunk,
		2*crcParallelMinChunk + 17, 8*crcParallelMinChunk + 3, 32 * crcParallelMinChunk}
	for _, n := range sizes {
		b := make([]byte, n)
		rng.Read(b) //nolint:errcheck // never fails
		want := crc32.Checksum(b, segCRCTable)
		if got := checksumParallel(b); got != want {
			t.Errorf("size %d: parallel crc %08x, sequential %08x", n, got, want)
		}
	}
}

// crc32Combine must satisfy crc(a||b) = combine(crc(a), crc(b), len(b)) for
// arbitrary split points, including empty halves.
func TestCRC32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := make([]byte, 100000)
	rng.Read(b) //nolint:errcheck
	whole := crc32.Checksum(b, segCRCTable)
	for _, split := range []int{0, 1, 13, 4096, 50000, 99999, 100000} {
		c1 := crc32.Checksum(b[:split], segCRCTable)
		c2 := crc32.Checksum(b[split:], segCRCTable)
		if got := crc32Combine(c1, c2, int64(len(b)-split)); got != whole {
			t.Errorf("split %d: combined crc %08x, whole %08x", split, got, whole)
		}
	}
}

func BenchmarkChecksumSequential(b *testing.B) {
	buf := make([]byte, 32<<20)
	rand.New(rand.NewSource(1)).Read(buf) //nolint:errcheck
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crc32.Checksum(buf, segCRCTable)
	}
}

func BenchmarkChecksumParallel(b *testing.B) {
	buf := make([]byte, 32<<20)
	rand.New(rand.NewSource(1)).Read(buf) //nolint:errcheck
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checksumParallel(buf)
	}
}
