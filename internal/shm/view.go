package shm

import (
	"fmt"
	"sync/atomic"

	"scuba/internal/fault"
	"scuba/internal/rowblock"
)

// MappedView serves a table segment's row blocks zero-copy from a read-only
// mmap (instant-on restarts, ROADMAP "Instant-on restart"). Where the
// draining TableSegmentReader copies each block to the heap and truncates
// the segment behind it, a view decodes every block image in place — the RBC
// blobs alias the mapping — and keeps the segment mapped until the last
// reference drains.
//
// References: the view opens holding one reference per decoded block (the
// table's residency), and every in-flight scan that snapshots a view block
// takes one more via Retain. Whoever removes a block from circulation —
// expiry, background promotion, shutdown copy-out, table teardown — releases
// the block's residency reference; the scan that pinned a block releases its
// own when it drains. When the count hits zero the segment is unmapped and
// its file deleted, and Retain can never resurrect it (CAS from nonzero
// only), so a reader either pins live memory or is told the view is gone.
type MappedView struct {
	m         *Manager
	seg       *Segment
	tableName string
	blocks    []*rowblock.RowBlock
	bytes     int64
	refs      atomic.Int64
}

// OpenTableSegmentView maps a table segment read-only and decodes every
// block image in place. Validation is the same up-front gauntlet as the
// copy-in path — header, footer, whole-payload CRC, then per-column CRCs as
// each block decodes — so a view that opens successfully is exactly as
// trustworthy as a completed eager copy-in. Any failure closes the mapping
// and returns an error; the caller degrades the table to eager copy-in.
//
// A segment with zero blocks yields (nil, nil): there is nothing to serve,
// the mapping is closed, and the segment file is left for the caller.
func OpenTableSegmentView(m *Manager, segName string) (*MappedView, error) {
	if err := fault.Inject(fault.SiteShmView); err != nil {
		return nil, fmt.Errorf("shm: view segment %s: %w", segName, err)
	}
	seg, err := m.OpenSegmentRO(segName)
	if err != nil {
		return nil, err
	}
	// No CorruptBytes hook here: the mapping is PROT_READ, so flipping bytes
	// in place would fault. Rot coverage comes from arming shm.copy_out with
	// corrupt — the view's CRC validation is what must catch it.
	b := seg.Bytes()
	tableName, offsets, err := parseTableSegment(b)
	if err != nil {
		seg.Close()
		return nil, err
	}
	if len(offsets) == 0 {
		seg.Close()
		return nil, nil
	}
	v := &MappedView{m: m, seg: seg, tableName: tableName}
	for i, off := range offsets {
		// The segment-wide payload CRC just verified every image byte, so the
		// per-column checksum pass would re-read the same memory for nothing.
		rb, n, err := rowblock.DecodeImageVerified(b[off:])
		if err != nil {
			seg.Close()
			return nil, fmt.Errorf("shm: view block %d of %s: %w", i, tableName, err)
		}
		rb.SetSource(v)
		v.blocks = append(v.blocks, rb)
		v.bytes += int64(n)
	}
	v.refs.Store(int64(len(v.blocks)))
	return v, nil
}

// TableName returns the table this segment belongs to.
func (v *MappedView) TableName() string { return v.tableName }

// SegmentName returns the mapped segment's name.
func (v *MappedView) SegmentName() string { return v.seg.Name() }

// Blocks returns the decoded zero-copy blocks in segment (arrival) order.
// Each aliases the mapping and carries the view as its Source.
func (v *MappedView) Blocks() []*rowblock.RowBlock { return v.blocks }

// Bytes returns the total payload bytes the view serves.
func (v *MappedView) Bytes() int64 { return v.bytes }

// Refs returns the current reference count (tests and telemetry).
func (v *MappedView) Refs() int64 { return v.refs.Load() }

// Retain pins the mapping for a reader. It reports false when the view has
// already drained to zero — the memory is unmapped or about to be — in which
// case the caller must not touch any view block's columns.
func (v *MappedView) Retain() bool {
	for {
		n := v.refs.Load()
		if n <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Discard closes the mapping WITHOUT deleting the segment file, for callers
// rejecting a freshly opened view (e.g. a table-name mismatch against the
// metadata) whose file a fallback path may still want to read. Legal only
// while the caller holds every reference — before any block has been handed
// out to a table or scan.
func (v *MappedView) Discard() error {
	v.refs.Store(0)
	return v.seg.Close()
}

// Release drops one reference. The releaser that takes the count to zero
// unmaps the segment and deletes its file — removal errors are deliberately
// swallowed (a leftover file is swept by the next restore's orphan pass;
// there is no caller positioned to act on the error mid-scan-drain).
func (v *MappedView) Release() {
	if n := v.refs.Add(-1); n == 0 {
		v.seg.Close()                   //nolint:errcheck
		v.m.RemoveSegment(v.seg.Name()) //nolint:errcheck
	} else if n < 0 {
		panic(fmt.Sprintf("shm: view %s over-released (refs=%d)", v.seg.Name(), n))
	}
}
