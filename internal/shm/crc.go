package shm

import (
	"hash/crc32"
	"runtime"
	"sync"
)

// Segment validation is the only data-proportional work on the instant-on
// critical path: a restarting leaf flips ready as soon as the payload CRC
// passes, so the whole-payload checksum pass IS the availability gap. A
// single-core CRC leaves the other cores idle at the worst possible moment.
// checksumParallel splits the buffer into per-core chunks, checksums them
// concurrently, and stitches the results with the standard GF(2)
// matrix-exponentiation CRC combine (the zlib crc32_combine construction,
// here over the Castagnoli polynomial).

// crcParallelMinChunk is the smallest chunk worth a goroutine; below
// workers*this, the sequential checksum wins.
const crcParallelMinChunk = 512 << 10

// checksumParallel computes crc32.Checksum(b, segCRCTable) using up to
// NumCPU cores. Identical result, same polynomial, only faster on large
// buffers.
func checksumParallel(b []byte) uint32 {
	workers := runtime.NumCPU()
	if m := len(b) / crcParallelMinChunk; workers > m {
		workers = m
	}
	if workers <= 1 {
		return crc32.Checksum(b, segCRCTable)
	}
	chunk := (len(b) + workers - 1) / workers
	crcs := make([]uint32, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(b) {
			hi = len(b)
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			crcs[i] = crc32.Checksum(b[lo:hi], segCRCTable)
		}(i, lo, hi)
	}
	wg.Wait()
	crc := crcs[0]
	for i := 1; i < workers; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(b) {
			hi = len(b)
		}
		crc = crc32Combine(crc, crcs[i], int64(hi-lo))
	}
	return crc
}

// castagnoliReflected is the bit-reversed Castagnoli polynomial, the form
// the reflected CRC algorithm (and hash/crc32) computes with.
const castagnoliReflected = 0x82F63B78

// crc32Combine returns the CRC of the concatenation of two buffers given
// crc1 of the first, crc2 of the second, and the second's length: it
// advances crc1 through len2 zero bytes by applying the CRC's linear
// operator as a GF(2) matrix raised to len2 (squaring per bit of len2),
// then folds in crc2. Works on finalized (xor-conditioned) CRC values.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	var even, odd [32]uint32
	// The operator for one zero bit: shift down, feeding the polynomial.
	odd[0] = castagnoliReflected
	row := uint32(1)
	for n := 1; n < 32; n++ {
		odd[n] = row
		row <<= 1
	}
	// Square twice: one zero bit -> one zero byte (8 bits = 2^3 squarings,
	// two here and one per loop entry below).
	gf2MatrixSquare(&even, &odd)
	gf2MatrixSquare(&odd, &even)
	// Apply len2 zero bytes, squaring the operator per bit of len2.
	for {
		gf2MatrixSquare(&even, &odd)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&odd, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}

// gf2MatrixTimes multiplies the 32x32 GF(2) matrix by the vector.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2MatrixSquare sets square to mat*mat.
func gf2MatrixSquare(square, mat *[32]uint32) {
	for n := 0; n < 32; n++ {
		square[n] = gf2MatrixTimes(mat, mat[n])
	}
}
