package shm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentTableSegmentCreation drives the invariant the parallel
// shutdown path relies on: many goroutines, each creating and finishing its
// own distinct table segment under one manager, never interfere. Every
// segment must afterwards open and drain to exactly the blocks written.
func TestConcurrentTableSegmentCreation(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		m := newTestManager(t, 1, noMmap)
		const nSegments = 16
		const nBlocks = 3
		var wg sync.WaitGroup
		errs := make(chan error, nSegments)
		for i := 0; i < nSegments; i++ {
			blocks := buildBlocks(t, nBlocks, 50+i)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				segName := fmt.Sprintf("tbl-seg%02d", i)
				w, err := CreateTableSegment(m, segName, fmt.Sprintf("seg%02d", i), 256)
				if err != nil {
					errs <- err
					return
				}
				for _, rb := range blocks {
					if err := w.WriteBlock(rb, false); err != nil {
						errs <- err
						return
					}
				}
				errs <- w.Finish()
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < nSegments; i++ {
			r, err := OpenTableSegment(m, fmt.Sprintf("tbl-seg%02d", i))
			if err != nil {
				t.Fatalf("segment %d: %v", i, err)
			}
			if r.NumBlocks() != nBlocks {
				t.Errorf("segment %d: %d blocks", i, r.NumBlocks())
			}
			rows := 0
			for {
				rb, err := r.ReadBlock()
				if err != nil {
					t.Fatalf("segment %d: %v", i, err)
				}
				if rb == nil {
					break
				}
				rows += rb.Rows()
			}
			if want := nBlocks * (50 + i); rows != want {
				t.Errorf("segment %d: %d rows, want %d", i, rows, want)
			}
			if err := r.Close(true); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestConcurrentMetadataWriters hammers WriteMetadata from many goroutines.
// Interleaved writers must never leave a torn or corrupt metadata file: the
// final read decodes cleanly to one of the written images.
func TestConcurrentMetadataWriters(t *testing.T) {
	m := newTestManager(t, 2, false)
	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			md := &Metadata{Version: LayoutVersion, Created: int64(i)}
			for j := 0; j <= i; j++ {
				md.Segments = append(md.Segments, SegmentInfo{
					Table:   fmt.Sprintf("t%d-%d", i, j),
					Segment: fmt.Sprintf("tbl-t%d-%d", i, j),
				})
			}
			for k := 0; k < 20; k++ {
				if err := m.WriteMetadata(md); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	md, err := m.ReadMetadata()
	if err != nil {
		t.Fatalf("metadata torn after concurrent writes: %v", err)
	}
	// The surviving image must be internally consistent: the writer that
	// stamped Created=i wrote exactly i+1 segments.
	if got, want := len(md.Segments), int(md.Created)+1; got != want {
		t.Errorf("segments = %d, want %d for writer %d", got, want, md.Created)
	}
}

// TestWriterMisuse is the table-driven double-Finish / Finish-after-Abort /
// write-after-terminal matrix: every misuse returns ErrClosed (or nil where
// the operation is defined as an idempotent no-op) and never panics.
func TestWriterMisuse(t *testing.T) {
	newWriter := func(t *testing.T) *TableSegmentWriter {
		t.Helper()
		m := newTestManager(t, 1, false)
		w, err := CreateTableSegment(m, "tbl-m", "m", 4096)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	block := buildBlocks(t, 1, 10)[0]

	cases := []struct {
		name    string
		run     func(w *TableSegmentWriter) error
		wantErr error // nil means the final op must succeed
	}{
		{"double finish", func(w *TableSegmentWriter) error {
			if err := w.Finish(); err != nil {
				t.Fatal(err)
			}
			return w.Finish()
		}, ErrClosed},
		{"finish after abort", func(w *TableSegmentWriter) error {
			if err := w.Abort(); err != nil {
				t.Fatal(err)
			}
			return w.Finish()
		}, ErrClosed},
		{"abort after finish is a no-op", func(w *TableSegmentWriter) error {
			if err := w.Finish(); err != nil {
				t.Fatal(err)
			}
			return w.Abort()
		}, nil},
		{"double abort is a no-op", func(w *TableSegmentWriter) error {
			if err := w.Abort(); err != nil {
				t.Fatal(err)
			}
			return w.Abort()
		}, nil},
		{"write after finish", func(w *TableSegmentWriter) error {
			if err := w.Finish(); err != nil {
				t.Fatal(err)
			}
			return w.WriteBlock(block, false)
		}, ErrClosed},
		{"write after abort", func(w *TableSegmentWriter) error {
			if err := w.Abort(); err != nil {
				t.Fatal(err)
			}
			return w.WriteBlock(block, false)
		}, ErrClosed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newWriter(t)
			if err := w.WriteBlock(block, false); err != nil {
				t.Fatal(err)
			}
			err := tc.run(w)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("got %v, want success", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}
