package shm

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"scuba/internal/rowblock"
)

func buildBlocks(t *testing.T, nblocks, rowsPerBlock int) []*rowblock.RowBlock {
	t.Helper()
	out := make([]*rowblock.RowBlock, nblocks)
	for bidx := range out {
		b := rowblock.NewBuilder(int64(1000 + bidx))
		for i := 0; i < rowsPerBlock; i++ {
			err := b.AddRow(rowblock.Row{
				Time: int64(bidx*rowsPerBlock + i),
				Cols: map[string]rowblock.Value{
					"host": rowblock.StringValue(fmt.Sprintf("host-%d", i%7)),
					"lat":  rowblock.Int64Value(int64(i)),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		rb, err := b.Seal()
		if err != nil {
			t.Fatal(err)
		}
		out[bidx] = rb
	}
	return out
}

func TestTableSegmentRoundTrip(t *testing.T) {
	runBothModes(t, func(t *testing.T, noMmap bool) {
		m := newTestManager(t, 1, noMmap)
		blocks := buildBlocks(t, 4, 300)
		var totalBytes int64
		for _, rb := range blocks {
			totalBytes += int64(rb.ImageSize())
		}

		w, err := CreateTableSegment(m, "tbl-events", "events", totalBytes)
		if err != nil {
			t.Fatal(err)
		}
		for _, rb := range blocks {
			if err := w.WriteBlock(rb, false); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}

		r, err := OpenTableSegment(m, "tbl-events")
		if err != nil {
			t.Fatal(err)
		}
		if r.TableName() != "events" {
			t.Errorf("TableName = %q", r.TableName())
		}
		if r.NumBlocks() != 4 {
			t.Errorf("NumBlocks = %d", r.NumBlocks())
		}
		// Blocks come back in reverse order.
		var restored []*rowblock.RowBlock
		for {
			rb, err := r.ReadBlock()
			if err != nil {
				t.Fatal(err)
			}
			if rb == nil {
				break
			}
			restored = append(restored, rb)
		}
		if err := r.Close(true); err != nil {
			t.Fatal(err)
		}
		if len(restored) != 4 {
			t.Fatalf("restored %d blocks", len(restored))
		}
		for i, rb := range restored {
			orig := blocks[len(blocks)-1-i]
			if rb.Header() != orig.Header() {
				t.Errorf("block %d header mismatch", i)
			}
			gotTimes, err := rb.Times()
			if err != nil {
				t.Fatal(err)
			}
			wantTimes, _ := orig.Times()
			if !reflect.DeepEqual(gotTimes, wantTimes) {
				t.Errorf("block %d times mismatch", i)
			}
		}
		if m.SegmentExists("tbl-events") {
			t.Error("segment not removed after Close(true)")
		}
	})
}

func TestTableSegmentGrowsFromSmallEstimate(t *testing.T) {
	// Figure 6 estimates the size and grows if needed; force growth with a
	// deliberately tiny estimate.
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 6, 500)
	w, err := CreateTableSegment(m, "tbl-g", "g", 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range blocks {
		if err := w.WriteBlock(rb, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenTableSegment(m, "tbl-g")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(true)
	count := 0
	for {
		rb, err := r.ReadBlock()
		if err != nil {
			t.Fatal(err)
		}
		if rb == nil {
			break
		}
		count++
	}
	if count != 6 {
		t.Errorf("restored %d blocks", count)
	}
}

func TestWriteBlockReleasesHeapColumns(t *testing.T) {
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 1, 100)
	w, err := CreateTableSegment(m, "tbl-r", "r", int64(blocks[0].ImageSize()))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(blocks[0], true); err != nil {
		t.Fatal(err)
	}
	if !blocks[0].Released() {
		t.Error("columns not released after copy")
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	// Released blocks still restore correctly from the segment.
	r, err := OpenTableSegment(m, "tbl-r")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(true)
	rb, err := r.ReadBlock()
	if err != nil || rb == nil {
		t.Fatalf("read: %v", err)
	}
	if rb.Rows() != 100 {
		t.Errorf("rows = %d", rb.Rows())
	}
}

func TestReaderTruncatesAsItDrains(t *testing.T) {
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 3, 1000)
	var total int64
	for _, rb := range blocks {
		total += int64(rb.ImageSize())
	}
	w, err := CreateTableSegment(m, "tbl-t", "t", total)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range blocks {
		if err := w.WriteBlock(rb, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenTableSegment(m, "tbl-t")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(true)
	prev := r.seg.Size()
	for {
		rb, err := r.ReadBlock()
		if err != nil {
			t.Fatal(err)
		}
		if rb == nil {
			break
		}
		if r.seg.Size() >= prev {
			t.Errorf("segment did not shrink: %d -> %d", prev, r.seg.Size())
		}
		prev = r.seg.Size()
	}
}

func TestOpenTableSegmentRejectsCorruption(t *testing.T) {
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 2, 50)
	w, err := CreateTableSegment(m, "tbl-c", "c", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range blocks {
		if err := w.WriteBlock(rb, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	corrupt := func(mut func([]byte)) error {
		seg, err := m.OpenSegment("tbl-c")
		if err != nil {
			t.Fatal(err)
		}
		mut(seg.Bytes())
		seg.Close()
		r, err := OpenTableSegment(m, "tbl-c")
		if err != nil {
			return err
		}
		for {
			rb, rerr := r.ReadBlock()
			if rerr != nil {
				r.Close(false)
				return rerr
			}
			if rb == nil {
				break
			}
		}
		r.Close(false)
		return nil
	}

	if err := corrupt(func(b []byte) { b[0] ^= 0xff }); err == nil {
		t.Error("bad magic accepted")
	}
	// Restore the magic, corrupt the version.
	if err := corrupt(func(b []byte) { b[0] ^= 0xff; b[4] ^= 0xff }); !errors.Is(err, ErrVersionSkew) {
		t.Errorf("version skew: %v", err)
	}
	// Fix version, corrupt a payload byte: the RBC checksum must catch it.
	if err := corrupt(func(b []byte) { b[4] ^= 0xff; b[200] ^= 0x01 }); err == nil {
		t.Error("payload corruption accepted")
	}
}

func TestAbortLeavesRemovableSegment(t *testing.T) {
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 1, 10)
	w, err := CreateTableSegment(m, "tbl-a", "a", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(blocks[0], false); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveSegment("tbl-a"); err != nil {
		t.Fatal(err)
	}
	if m.SegmentExists("tbl-a") {
		t.Error("segment still exists")
	}
}

func TestBytesCopiedAccounting(t *testing.T) {
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 2, 100)
	w, err := CreateTableSegment(m, "tbl-b", "b", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, rb := range blocks {
		for i := 0; i < rb.NumColumns(); i++ {
			want += int64(rb.Column(i).Size())
		}
		if err := w.WriteBlock(rb, false); err != nil {
			t.Fatal(err)
		}
	}
	if w.BytesCopied != want {
		t.Errorf("BytesCopied = %d, want %d", w.BytesCopied, want)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}
