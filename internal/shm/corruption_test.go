package shm

import (
	"errors"
	"reflect"
	"testing"

	"scuba/internal/fault"
	"scuba/internal/rowblock"
)

// writeSegment backs blocks into a finished segment and returns its file
// contents plus the payload region [payloadStart, footerEnd).
func writeSegment(t testing.TB, m *Manager, segName, tableName string, blocks []*rowblock.RowBlock) (payloadStart, payloadEnd int64) {
	t.Helper()
	w, err := CreateTableSegment(m, segName, tableName, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range blocks {
		if err := w.WriteBlock(rb, false); err != nil {
			t.Fatal(err)
		}
	}
	payloadStart = w.payloadStart
	payloadEnd = w.pos + int64(8*len(w.offsets))
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return payloadStart, payloadEnd
}

// TestPayloadCRCCatchesFlippedBytes is the property the satellite task asks
// for: the metadata CRC already guards the metadata block, but a flipped bit
// anywhere in a mapped table segment's row-block data (or footer) must be
// caught before any block is restored, so the leaf can quarantine the table
// to disk recovery instead of installing silently wrong columns.
func TestPayloadCRCCatchesFlippedBytes(t *testing.T) {
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 3, 200)
	start, end := writeSegment(t, m, "tbl-crc", "crc", blocks)

	flip := func(off int64, x byte) error {
		seg, err := m.OpenSegment("tbl-crc")
		if err != nil {
			t.Fatal(err)
		}
		seg.Bytes()[off] ^= x
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenTableSegment(m, "tbl-crc")
		if err != nil {
			return err
		}
		r.Close(false)
		return nil
	}

	// Sample positions across the whole payload + footer region, including
	// both boundaries.
	offs := []int64{start, start + 1, (start + end) / 2, end - 9, end - 1}
	step := (end - start) / 37
	if step < 1 {
		step = 1
	}
	for off := start; off < end; off += step {
		offs = append(offs, off)
	}
	for _, off := range offs {
		err := flip(off, 0x40)
		if !errors.Is(err, ErrSegCorrupt) {
			t.Fatalf("flip at %d (payload [%d,%d)): err = %v, want ErrSegCorrupt", off, start, end, err)
		}
		if err := flip(off, 0x40); err != nil { // flip back: must validate again
			t.Fatalf("restore flip at %d: %v", off, err)
		}
	}
}

// FuzzSegmentCorruption checks that an arbitrary single-byte mutation
// anywhere in the segment file never yields silently wrong block data: the
// open either fails, a read fails, or every restored block is identical to
// the original.
func FuzzSegmentCorruption(f *testing.F) {
	f.Add(uint32(0), byte(0xff))   // magic
	f.Add(uint32(4), byte(0x01))   // version
	f.Add(uint32(28), byte(0x80))  // payload CRC field
	f.Add(uint32(40), byte(0xa5))  // payload
	f.Add(uint32(999), byte(0x01)) // deep payload / footer
	f.Add(uint32(50), byte(0x00))  // no-op mutation must keep working
	f.Fuzz(func(t *testing.T, off uint32, x byte) {
		m := newTestManager(t, 1, false)
		blocks := buildBlocks(t, 2, 50)
		writeSegment(t, m, "tbl-fz", "fz", blocks)

		seg, err := m.OpenSegment("tbl-fz")
		if err != nil {
			t.Fatal(err)
		}
		b := seg.Bytes()
		pos := int64(off) % seg.Size()
		b[pos] ^= x
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := OpenTableSegment(m, "tbl-fz")
		if err != nil {
			return // detected at open — fine
		}
		defer r.Close(false)
		if r.TableName() != "fz" {
			return // name bytes are outside the CRC; the leaf checks this
		}
		var restored []*rowblock.RowBlock
		for {
			rb, err := r.ReadBlock()
			if err != nil {
				return // detected at read — fine
			}
			if rb == nil {
				break
			}
			restored = append(restored, rb)
		}
		// Survived every check: the data must be exactly the original.
		if len(restored) != len(blocks) {
			t.Fatalf("mutation (%d, %#x) silently dropped blocks: %d of %d", pos, x, len(restored), len(blocks))
		}
		for i, rb := range restored {
			orig := blocks[len(blocks)-1-i]
			gotTimes, err := rb.Times()
			if err != nil {
				t.Fatal(err)
			}
			wantTimes, _ := orig.Times()
			if !reflect.DeepEqual(gotTimes, wantTimes) {
				t.Fatalf("mutation (%d, %#x) silently corrupted block %d", pos, x, i)
			}
		}
	})
}

func TestFaultSiteCopyOut(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 1, 20)

	fault.Arm(fault.Point{Site: fault.SiteShmCopyOut, Action: fault.ActError})
	w, err := CreateTableSegment(m, "tbl-f1", "f1", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(blocks[0], false); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("WriteBlock = %v, want ErrInjected", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	fault.Reset()

	// Corrupt action: the damage lands after the CRC is stamped, so the
	// segment finishes cleanly but fails validation at open.
	fault.Arm(fault.Point{Site: fault.SiteShmCopyOut, Action: fault.ActCorrupt})
	writeSegment(t, m, "tbl-f2", "f2", blocks)
	fault.Reset()
	if _, err := OpenTableSegment(m, "tbl-f2"); !errors.Is(err, ErrSegCorrupt) {
		t.Fatalf("open corrupted segment = %v, want ErrSegCorrupt", err)
	}
}

func TestFaultSiteCopyIn(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	m := newTestManager(t, 1, false)
	blocks := buildBlocks(t, 2, 20)
	writeSegment(t, m, "tbl-f3", "f3", blocks)

	fault.Arm(fault.Point{Site: fault.SiteShmCopyIn, Action: fault.ActError, After: 1})
	r, err := OpenTableSegment(m, "tbl-f3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBlock(); err != nil {
		t.Fatalf("first ReadBlock = %v", err)
	}
	if _, err := r.ReadBlock(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("second ReadBlock = %v, want ErrInjected", err)
	}
	r.Close(false)
	fault.Reset()

	// Corrupt action: open-time CRC passed, so the block's own column
	// checksums must catch the in-flight damage.
	fault.Arm(fault.Point{Site: fault.SiteShmCopyIn, Action: fault.ActCorrupt})
	writeSegment(t, m, "tbl-f4", "f4", blocks)
	r, err = OpenTableSegment(m, "tbl-f4")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(false)
	if _, err := r.ReadBlock(); err == nil {
		t.Fatal("corrupted copy-in block decoded cleanly")
	}
}

func TestFaultSiteMetadataMapAndCommit(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	m := newTestManager(t, 1, false)
	md := &Metadata{Valid: true, Version: LayoutVersion, Created: 42}

	fault.Arm(fault.Point{Site: fault.SiteShmCommit, Action: fault.ActError})
	if err := m.WriteMetadata(md); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("WriteMetadata = %v, want ErrInjected", err)
	}
	fault.Reset()
	if err := m.WriteMetadata(md); err != nil {
		t.Fatal(err)
	}

	fault.Arm(fault.Point{Site: fault.SiteShmMap, Action: fault.ActError})
	if _, err := m.ReadMetadata(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("ReadMetadata = %v, want ErrInjected", err)
	}
	fault.Reset()
	got, err := m.ReadMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Valid || got.Created != 42 {
		t.Fatalf("metadata round trip = %+v", got)
	}
}
