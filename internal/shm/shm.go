// Package shm provides the shared memory substrate for fast restarts (§3).
// Shared memory lets a process communicate with its replacement even though
// the two lifetimes never overlap: the first process writes to named
// segments, exits, and the second process maps and reads them.
//
// The paper uses the POSIX mmap API via Boost::Interprocess. Here a segment
// is an mmap'ed file in a tmpfs directory (/dev/shm by default on Linux),
// which has identical lifetime semantics: segments are named, survive
// process exit, and are explicitly removed. A heap-backed fallback (see
// Options.DisableMmap) keeps the package usable on systems without mmap;
// it still round-trips through the same files.
//
// Per Figure 4, every leaf server has a unique hard-coded location for its
// metadata: a valid bit, a layout version number, and the names of the
// shared memory segments it allocated — one segment per table.
package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"scuba/internal/fault"
)

// LayoutVersion is stamped into leaf metadata. It indicates whether the
// shared memory layout has changed; the heap layout can change independently
// (§4.2). A restoring process that finds a different version must fall back
// to disk recovery.
//
// Version history:
//
//	1 — initial table segment layout
//	2 — table segment header gained a payload CRC (see tableseg.go)
const LayoutVersion uint32 = 2

// DefaultDir is the default segment directory. /dev/shm is a tmpfs on
// Linux, so segments live in physical memory, never on disk.
const DefaultDir = "/dev/shm"

// Options configure a Manager.
type Options struct {
	// Dir is the directory holding segments and metadata. Empty means
	// DefaultDir. Tests point this at t.TempDir().
	Dir string
	// Namespace isolates multiple clusters sharing one directory. It is
	// prefixed to every file name.
	Namespace string
	// DisableMmap forces the heap-backed fallback: segment contents are
	// kept in ordinary memory and written to the file on Sync/Close.
	DisableMmap bool
}

// Manager creates, opens, and removes the segments of one leaf server.
type Manager struct {
	dir       string
	namespace string
	leafID    int
	noMmap    bool
}

// NewManager returns a manager for the given leaf's segments. Leaf IDs are
// small integers, unique per machine (each machine runs eight leaf servers).
func NewManager(leafID int, opts Options) *Manager {
	dir := opts.Dir
	if dir == "" {
		dir = DefaultDir
	}
	ns := opts.Namespace
	if ns == "" {
		ns = "scuba"
	}
	return &Manager{dir: dir, namespace: ns, leafID: leafID, noMmap: opts.DisableMmap}
}

// LeafID returns the leaf this manager serves.
func (m *Manager) LeafID() int { return m.leafID }

// metadataPath is the leaf's unique hard-coded metadata location (§4.2).
func (m *Manager) metadataPath() string {
	return filepath.Join(m.dir, fmt.Sprintf("%s-leaf%d-meta", m.namespace, m.leafID))
}

// segmentPath maps a segment name to its file.
func (m *Manager) segmentPath(name string) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s-leaf%d-%s", m.namespace, m.leafID, name))
}

// SegmentNameForTableGen derives a per-generation segment name: the plain
// table name plus a ".g<gen>" suffix. Instant-on restarts keep old-generation
// segments mapped (live query views) while a new shutdown writes fresh ones;
// a generation suffix keeps CreateSegment from O_TRUNC-ing a file a live view
// still has mapped, which would SIGBUS every reader. Metadata records the
// full segment name, so restore never needs to reverse this.
func SegmentNameForTableGen(table string, gen int64) string {
	if gen <= 0 {
		return SegmentNameForTable(table)
	}
	return fmt.Sprintf("%s.g%d", SegmentNameForTable(table), gen)
}

// SegmentNameForTable derives a filesystem-safe segment name for a table.
func SegmentNameForTable(table string) string {
	var b strings.Builder
	b.WriteString("tbl-")
	for _, r := range table {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			fmt.Fprintf(&b, "%%%04x", r)
		}
	}
	return b.String()
}

// Errors returned by the manager.
var (
	ErrNoMetadata  = errors.New("shm: no leaf metadata")
	ErrMetaCorrupt = errors.New("shm: corrupt leaf metadata")
	ErrVersionSkew = errors.New("shm: shared memory layout version mismatch")
	ErrSegmentGone = errors.New("shm: segment does not exist")
	ErrSegmentSize = errors.New("shm: bad segment size")
	ErrClosed      = errors.New("shm: segment closed")
)

// SegmentInfo names one table's segment in the leaf metadata.
type SegmentInfo struct {
	Table   string
	Segment string
}

// Metadata is the per-leaf metadata block (Figure 4): a valid bit, the
// layout version, and pointers to (names of) the allocated segments.
type Metadata struct {
	Valid    bool
	Version  uint32
	Created  int64 // unix seconds when the backup began
	Segments []SegmentInfo
}

const metaMagic uint32 = 0x4154454d // "META"

var metaTable = crc32.MakeTable(crc32.Castagnoli)

// encode serializes metadata with a trailing CRC.
func (md *Metadata) encode() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, metaMagic)
	b = binary.LittleEndian.AppendUint32(b, md.Version)
	if md.Valid {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(md.Created))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(md.Segments)))
	for _, s := range md.Segments {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Table)))
		b = append(b, s.Table...)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Segment)))
		b = append(b, s.Segment...)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, metaTable))
}

func decodeMetadata(b []byte) (*Metadata, error) {
	if len(b) < 4+4+1+8+4+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrMetaCorrupt, len(b))
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, metaTable) != sum {
		return nil, fmt.Errorf("%w: checksum", ErrMetaCorrupt)
	}
	if binary.LittleEndian.Uint32(body) != metaMagic {
		return nil, fmt.Errorf("%w: magic", ErrMetaCorrupt)
	}
	md := &Metadata{
		Version: binary.LittleEndian.Uint32(body[4:]),
		Valid:   body[8] == 1,
		Created: int64(binary.LittleEndian.Uint64(body[9:])),
	}
	n := int(binary.LittleEndian.Uint32(body[17:]))
	pos := 21
	readStr := func() (string, error) {
		if pos+2 > len(body) {
			return "", fmt.Errorf("%w: truncated string", ErrMetaCorrupt)
		}
		l := int(binary.LittleEndian.Uint16(body[pos:]))
		pos += 2
		if pos+l > len(body) {
			return "", fmt.Errorf("%w: truncated string body", ErrMetaCorrupt)
		}
		s := string(body[pos : pos+l])
		pos += l
		return s, nil
	}
	for i := 0; i < n; i++ {
		tbl, err := readStr()
		if err != nil {
			return nil, err
		}
		seg, err := readStr()
		if err != nil {
			return nil, err
		}
		md.Segments = append(md.Segments, SegmentInfo{Table: tbl, Segment: seg})
	}
	return md, nil
}

// WriteMetadata atomically replaces the leaf metadata (write temp + rename,
// so a crash mid-write leaves either the old or the new file, never a torn
// one — a torn metadata block would defeat the valid bit). The temp file
// name is unique per call, so concurrent writers cannot interleave bytes in
// a shared staging file; the last rename wins with a complete image either
// way.
func (m *Manager) WriteMetadata(md *Metadata) error {
	if err := fault.Inject(fault.SiteShmCommit); err != nil {
		return fmt.Errorf("shm: write metadata: %w", err)
	}
	path := m.metadataPath()
	f, err := os.CreateTemp(m.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("shm: stage metadata: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(md.encode())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("shm: write metadata: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("shm: install metadata: %w", err)
	}
	return nil
}

// ReadMetadata loads and validates the leaf metadata.
func (m *Manager) ReadMetadata() (*Metadata, error) {
	if err := fault.Inject(fault.SiteShmMap); err != nil {
		return nil, fmt.Errorf("shm: read metadata: %w", err)
	}
	b, err := os.ReadFile(m.metadataPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoMetadata
		}
		return nil, fmt.Errorf("shm: read metadata: %w", err)
	}
	return decodeMetadata(b)
}

// Invalidate clears the valid bit if metadata exists. The restore path calls
// it before touching any segment, so an interrupted restore reverts to disk
// recovery on the next start (Figure 7).
func (m *Manager) Invalidate() error {
	md, err := m.ReadMetadata()
	if errors.Is(err, ErrNoMetadata) {
		return nil
	}
	if err != nil {
		return err
	}
	md.Valid = false
	return m.WriteMetadata(md)
}

// RemoveAll deletes the metadata and every segment it references, plus any
// orphaned segment files with this leaf's prefix.
func (m *Manager) RemoveAll() error {
	var firstErr error
	if md, err := m.ReadMetadata(); err == nil {
		for _, s := range md.Segments {
			if err := m.RemoveSegment(s.Segment); err != nil && !errors.Is(err, ErrSegmentGone) && firstErr == nil {
				firstErr = err
			}
		}
	}
	prefix := fmt.Sprintf("%s-leaf%d-", m.namespace, m.leafID)
	entries, err := os.ReadDir(m.dir)
	if err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), prefix) {
				if err := os.Remove(filepath.Join(m.dir, e.Name())); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// RemoveMetadata deletes only the leaf metadata file, leaving segment files
// in place. The instant-on restore path uses it: segments stay mapped (and
// on tmpfs) until their last reader drains, but the metadata must go so a
// crash mid-promotion reverts to disk/WAL recovery, never to a half-consumed
// backup.
func (m *Manager) RemoveMetadata() error {
	err := os.Remove(m.metadataPath())
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// RemoveOtherSegments deletes every segment file with this leaf's prefix
// except the metadata file and the named segments. The instant-on restore
// calls it after mapping the current generation's views, sweeping orphans
// left by a previous generation that exited before its views drained.
func (m *Manager) RemoveOtherSegments(keep []string) error {
	keepName := make(map[string]bool, len(keep)+1)
	keepName[filepath.Base(m.metadataPath())] = true
	for _, k := range keep {
		keepName[filepath.Base(m.segmentPath(k))] = true
	}
	prefix := fmt.Sprintf("%s-leaf%d-", m.namespace, m.leafID)
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) && !keepName[e.Name()] {
			if err := os.Remove(filepath.Join(m.dir, e.Name())); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// RemoveSegment deletes one segment file.
func (m *Manager) RemoveSegment(name string) error {
	err := os.Remove(m.segmentPath(name))
	if os.IsNotExist(err) {
		return ErrSegmentGone
	}
	return err
}

// CreateSegment creates (or truncates) a segment of the given size.
func (m *Manager) CreateSegment(name string, size int64) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrSegmentSize, size)
	}
	path := m.segmentPath(name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("shm: create segment %s: %w", name, err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: size segment %s: %w", name, err)
	}
	s := &Segment{name: name, path: path, f: f, size: size, useMmap: !m.noMmap}
	if err := s.mapIn(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenSegment maps an existing segment read-write.
func (m *Manager) OpenSegment(name string) (*Segment, error) {
	path := m.segmentPath(name)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrSegmentGone
		}
		return nil, fmt.Errorf("shm: open segment %s: %w", name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() == 0 {
		f.Close()
		return nil, fmt.Errorf("%w: segment %s is empty", ErrSegmentSize, name)
	}
	s := &Segment{name: name, path: path, f: f, size: fi.Size(), useMmap: !m.noMmap}
	if err := s.mapIn(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenSegmentRO maps an existing segment read-only. Writes through the
// returned mapping fault; Grow/Truncate/Sync are rejected by the read-only
// flag at the mapping layer. Instant-on views use it so a stray store can
// never damage the backup other readers depend on.
func (m *Manager) OpenSegmentRO(name string) (*Segment, error) {
	path := m.segmentPath(name)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrSegmentGone
		}
		return nil, fmt.Errorf("shm: open segment %s: %w", name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() == 0 {
		f.Close()
		return nil, fmt.Errorf("%w: segment %s is empty", ErrSegmentSize, name)
	}
	s := &Segment{name: name, path: path, f: f, size: fi.Size(), useMmap: !m.noMmap, ro: true}
	if err := s.mapIn(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// SegmentExists reports whether the named segment file is present.
func (m *Manager) SegmentExists(name string) bool {
	_, err := os.Stat(m.segmentPath(name))
	return err == nil
}

// Segment is one mapped shared memory region.
type Segment struct {
	name    string
	path    string
	f       *os.File
	size    int64
	data    []byte
	useMmap bool
	ro      bool
	closed  bool
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.name }

// Size returns the current segment size.
func (s *Segment) Size() int64 { return s.size }

// Bytes returns the mapped contents. The slice is invalidated by Grow,
// Truncate, and Close.
func (s *Segment) Bytes() []byte { return s.data }

// Grow extends the segment (Figure 6: "grow the table segment in size if
// needed"). Existing contents are preserved; the previous Bytes slice is
// invalid afterwards.
func (s *Segment) Grow(newSize int64) error {
	if s.closed {
		return ErrClosed
	}
	if s.ro {
		return fmt.Errorf("shm: grow %s: segment is read-only", s.name)
	}
	if newSize <= s.size {
		return nil
	}
	if err := s.mapOut(); err != nil {
		return err
	}
	if err := s.f.Truncate(newSize); err != nil {
		return fmt.Errorf("shm: grow %s: %w", s.name, err)
	}
	s.size = newSize
	return s.mapIn()
}

// Truncate shrinks the segment (Figure 7: "truncate the table shared memory
// segment if needed", which releases physical pages back as the restore
// drains the segment).
func (s *Segment) Truncate(newSize int64) error {
	if s.closed {
		return ErrClosed
	}
	if s.ro {
		return fmt.Errorf("shm: truncate %s: segment is read-only", s.name)
	}
	if newSize >= s.size {
		return nil
	}
	if newSize <= 0 {
		newSize = 1 // keep the mapping valid; Remove deletes the file
	}
	if err := s.mapOut(); err != nil {
		return err
	}
	if err := s.f.Truncate(newSize); err != nil {
		return fmt.Errorf("shm: truncate %s: %w", s.name, err)
	}
	s.size = newSize
	return s.mapIn()
}

// Close unmaps and closes the segment, flushing contents to the backing
// file. The file (and therefore the data) survives for the next process.
func (s *Segment) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.mapOut(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Sync flushes the mapping to the backing file.
func (s *Segment) Sync() error {
	if s.closed {
		return ErrClosed
	}
	if s.ro {
		return fmt.Errorf("shm: sync %s: segment is read-only", s.name)
	}
	return s.sync()
}
