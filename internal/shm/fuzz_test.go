package shm

import "testing"

// FuzzDecodeMetadata feeds arbitrary bytes to the leaf-metadata decoder —
// the first thing a restarting process reads from shared memory. Garbage
// must be rejected (sending the leaf to disk recovery), never trusted.
func FuzzDecodeMetadata(f *testing.F) {
	valid := (&Metadata{
		Valid:    true,
		Version:  LayoutVersion,
		Created:  1700000000,
		Segments: []SegmentInfo{{Table: "events", Segment: "tbl-events"}},
	}).encode()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		md, err := decodeMetadata(data)
		if err == nil && md == nil {
			t.Fatal("nil metadata without error")
		}
	})
}
