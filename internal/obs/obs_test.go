package obs

import (
	"errors"
	"strings"
	"testing"

	"scuba/internal/metrics"
)

func TestSpanFeedsTimerAndRecorder(t *testing.T) {
	reg := metrics.NewRegistry()
	rec, err := OpenFlightRecorder(0, testOpts(t, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	o := New(reg, rec)

	sp := o.Start(PhaseCopyOut)
	sp.End(nil)
	sp.End(nil) // idempotent

	if st := reg.Timer(PhaseCopyOut).Stats(); st.Count != 1 {
		t.Errorf("timer count = %d", st.Count)
	}
	events := rec.Events()
	if len(events) != 2 || events[0].Kind != EventBegin || events[1].Kind != EventEnd {
		t.Errorf("events = %+v", events)
	}
	if events[0].Phase != PhaseCopyOut {
		t.Errorf("phase = %q", events[0].Phase)
	}
}

func TestSpanFailure(t *testing.T) {
	reg := metrics.NewRegistry()
	rec, err := OpenFlightRecorder(0, testOpts(t, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	o := New(reg, rec)

	sp := o.Start(PhaseCopyIn)
	sp.End(errors.New("segment gone"))

	// Failed phases still count toward the timer.
	if st := reg.Timer(PhaseCopyIn).Stats(); st.Count != 1 {
		t.Errorf("timer count = %d", st.Count)
	}
	sum := Summarize(rec.Events())
	if !sum.Failed || sum.FailurePhase != PhaseCopyIn || sum.FailureDetail != "segment gone" {
		t.Errorf("summary = %+v", sum)
	}
}

func TestNilObserverSafe(t *testing.T) {
	var o *Observer
	o.Event(EventNote, "x", "")
	sp := o.Start("phase")
	sp.End(nil)
	sp.End(errors.New("still fine"))
	if o.Registry() != nil || o.Recorder() != nil {
		t.Error("nil observer leaked sinks")
	}
}

func TestObserverWithoutRecorder(t *testing.T) {
	reg := metrics.NewRegistry()
	o := New(reg, nil)
	sp := o.Start("phase.only_timer")
	sp.End(nil)
	if st := reg.Timer("phase.only_timer").Stats(); st.Count != 1 {
		t.Errorf("timer count = %d", st.Count)
	}
}

func TestPerTablePhase(t *testing.T) {
	if got := PerTablePhase("copy-out", "service_logs"); got != "copy-out:service_logs" {
		t.Errorf("phase = %q", got)
	}
	if !strings.HasPrefix(PerTablePhase("copy-in", "t"), "copy-in:") {
		t.Error("prefix wrong")
	}
}
