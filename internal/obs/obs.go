package obs

import (
	"time"

	"scuba/internal/metrics"
)

// Observer ties the two observability sinks together: phase timers in a
// metrics registry (for /metrics and dashboards) and events in the flight
// recorder (for post-mortems of the run that never got to serve /metrics).
// Either sink may be nil, and a nil *Observer is a valid no-op — callers
// instrument unconditionally and configuration decides what sticks.
type Observer struct {
	reg *metrics.Registry
	rec *Recorder
}

// New creates an observer over a registry and recorder (either may be nil).
func New(reg *metrics.Registry, rec *Recorder) *Observer {
	return &Observer{reg: reg, rec: rec}
}

// Registry returns the observer's metrics registry (nil when absent).
func (o *Observer) Registry() *metrics.Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Recorder returns the observer's flight recorder (nil when absent).
func (o *Observer) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// Event records a bare flight-recorder event outside any span.
func (o *Observer) Event(kind EventKind, phase, detail string) {
	if o == nil {
		return
	}
	o.rec.Record(kind, phase, detail)
}

// Span is one timed phase. The phase name doubles as the registry timer
// name, so "restart.copy_out" shows up both as a timer on /metrics and as
// begin/end events in the flight recorder.
type Span struct {
	o     *Observer
	phase string
	begin time.Time
	done  bool
}

// Start begins a phase span: a begin event lands in the flight recorder
// immediately (it may be the last thing this process ever records), and the
// duration lands in the registry timer at End.
func (o *Observer) Start(phase string) *Span {
	if o == nil {
		return nil
	}
	o.rec.Record(EventBegin, phase, "")
	return &Span{o: o, phase: phase, begin: time.Now()}
}

// End completes the span: err == nil records success, otherwise the failure
// and its reason. The phase duration is observed either way — failed phases
// count toward the timers too, since a 20-minute failed copy is exactly the
// kind of thing the breakdown must show. End is idempotent.
func (s *Span) End(err error) {
	if s == nil || s.done {
		return
	}
	s.done = true
	d := time.Since(s.begin)
	if reg := s.o.Registry(); reg != nil {
		reg.Timer(s.phase).Observe(d)
	}
	if err != nil {
		s.o.rec.Record(EventFail, s.phase, err.Error())
		return
	}
	s.o.rec.Record(EventEnd, s.phase, d.String())
}

// Phase names used across the restart lifecycle. The leaf emits these; the
// acceptance checks and dashboards grep for them, so they are constants
// rather than ad-hoc strings.
const (
	// PhaseCopyOut is Figure 6's heap-to-shm copy (whole-leaf span; each
	// table also records copy-out:<table> events).
	PhaseCopyOut = "restart.copy_out"
	// PhaseCommit is the valid-bit write — Figure 6's commit point.
	PhaseCommit = "restart.commit"
	// PhaseMap is Figure 7's metadata read + segment-map validation.
	PhaseMap = "restart.map"
	// PhaseCopyIn is Figure 7's shm-to-heap copy (whole-leaf span; each
	// table also records copy-in:<table> events).
	PhaseCopyIn = "restart.copy_in"
	// PhaseDiskRecovery is the fallback path: read the disk backup and
	// translate it into memory.
	PhaseDiskRecovery = "restart.disk_recovery"
	// PhaseView is the instant-on mapped-view open: metadata + CRC validation
	// after which the leaf serves queries zero-copy from the mapping.
	PhaseView = "restart.view"
	// PhasePromote is the background promotion of shm-resident blocks to the
	// heap (whole-leaf span; each block lands in restart.promote.block_us).
	PhasePromote = "restart.promote"
	// TimerFirstQueryGap is the registry timer observing the time from Start
	// begin to the first successful query after a restart — the paper's
	// headline availability-gap metric, collapsed by instant-on.
	TimerFirstQueryGap = "restart.first_query_gap"
)

// PerTablePhase names the flight-recorder phase for one table's share of a
// copy half ("copy-out:<table>" / "copy-in:<table>").
func PerTablePhase(half, table string) string { return half + ":" + table }
