package obs

import (
	"testing"
	"time"

	"scuba/internal/metrics"
)

func mkTrace(id uint64, d time.Duration, spans ...LeafSpan) Trace {
	return Trace{TraceID: id, Query: "SELECT count() FROM events", Start: time.Unix(1000, 0),
		DurationNanos: d.Nanoseconds(), LeavesTotal: len(spans), LeavesAnswered: len(spans),
		Spans: spans}
}

func TestRandomIDNonzero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := RandomID()
		if id == 0 {
			t.Fatal("RandomID returned 0")
		}
		if seen[id] {
			t.Fatalf("RandomID repeated %d within 1000 draws", id)
		}
		seen[id] = true
	}
	var nilTracer *Tracer
	if got := nilTracer.NewTraceID(); got != 0 {
		t.Fatalf("nil tracer NewTraceID = %d, want 0 (untraced)", got)
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 4, SlowCapacity: 2, SlowThreshold: time.Millisecond})
	for i := 1; i <= 10; i++ {
		tr.Record(mkTrace(uint64(i), 2*time.Millisecond)) // all slow
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want capacity 4", len(recent))
	}
	// Newest first: 10, 9, 8, 7.
	if recent[0].TraceID != 10 || recent[3].TraceID != 7 {
		t.Fatalf("recent order wrong: %d..%d", recent[0].TraceID, recent[3].TraceID)
	}
	slow := tr.Slow()
	if len(slow) != 2 || slow[0].TraceID != 10 || slow[1].TraceID != 9 {
		t.Fatalf("slow ring wrong: %+v", slow)
	}
	if got := tr.Get(9); got == nil || got.TraceID != 9 {
		t.Fatalf("Get(9) = %+v (still in recent ring)", got)
	}
	if got := tr.Get(1); got != nil {
		t.Fatalf("Get(1) = %+v, want nil (rotated out of both rings)", got)
	}
}

func TestFixedSlowThreshold(t *testing.T) {
	tr := NewTracer(TracerOptions{SlowThreshold: 100 * time.Millisecond})
	if tr.Record(mkTrace(1, 50*time.Millisecond)) {
		t.Fatal("50ms marked slow under a 100ms threshold")
	}
	if !tr.Record(mkTrace(2, 150*time.Millisecond)) {
		t.Fatal("150ms not marked slow under a 100ms threshold")
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].TraceID != 2 || !slow[0].Slow {
		t.Fatalf("slow ring = %+v", slow)
	}
}

func TestAdaptiveSlowThreshold(t *testing.T) {
	tr := NewTracer(TracerOptions{MinSamples: 32})
	// Below MinSamples nothing is slow, however extreme.
	if tr.Record(mkTrace(1, time.Hour)) {
		t.Fatal("flagged slow before MinSamples latencies observed")
	}
	// Feed a tight 1ms workload, then an outlier: the outlier must land in
	// the slow ring, and a typical query must not.
	for i := 0; i < 64; i++ {
		tr.Record(mkTrace(uint64(100+i), time.Millisecond))
	}
	if tr.Record(mkTrace(2, time.Millisecond)) {
		t.Fatal("typical latency flagged slow by adaptive threshold")
	}
	if !tr.Record(mkTrace(3, 500*time.Millisecond)) {
		t.Fatal("500x-p99 outlier not flagged slow")
	}
}

func TestSpanDedupe(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	// Three records of span 7 (a retried RPC observed three ways) plus an
	// unrelated span: the answered attempt must win, order preserved.
	tr.Record(mkTrace(1, time.Millisecond,
		LeafSpan{SpanID: 7, Leaf: "a", Answered: false, Err: "conn reset"},
		LeafSpan{SpanID: 9, Leaf: "b", Answered: true},
		LeafSpan{SpanID: 7, Leaf: "a", Answered: true, Exec: &ExecStats{SpanID: 7, RowsScanned: 42}},
		LeafSpan{SpanID: 7, Leaf: "a", Answered: true, Exec: &ExecStats{SpanID: 7, RowsScanned: 1}},
	))
	got := tr.Recent()[0].Spans
	if len(got) != 2 {
		t.Fatalf("spans after dedupe = %d, want 2: %+v", len(got), got)
	}
	if got[0].SpanID != 7 || !got[0].Answered || got[0].Exec == nil || got[0].Exec.RowsScanned != 42 {
		t.Fatalf("dedupe kept wrong attempt: %+v", got[0])
	}
	if got[1].SpanID != 9 {
		t.Fatalf("unrelated span displaced: %+v", got[1])
	}
}

func TestTracerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := NewTracer(TracerOptions{SlowThreshold: 10 * time.Millisecond, Metrics: reg})
	tr.Record(mkTrace(1, time.Millisecond))
	tr.Record(mkTrace(2, 20*time.Millisecond))
	snap := reg.Snapshot()
	if snap.Counters["trace.count"] != 2 || snap.Counters["trace.slow"] != 1 {
		t.Fatalf("trace counters = %v", snap.Counters)
	}
}

func TestDominantPhase(t *testing.T) {
	e := &ExecStats{DecodeNanos: 10, PruneNanos: 5, ScanNanos: 80, MergeNanos: 5}
	if phase, v := e.DominantPhase(); phase != "scan" || v != 80 {
		t.Fatalf("DominantPhase = %s/%d, want scan/80", phase, v)
	}
	if phase, v := new(ExecStats).DominantPhase(); phase != "" || v != 0 {
		t.Fatalf("empty DominantPhase = %s/%d, want empty", phase, v)
	}
}

func TestSlowestSpan(t *testing.T) {
	tr := mkTrace(1, time.Second,
		LeafSpan{SpanID: 1, Leaf: "a", Answered: true, RTTNanos: 100},
		LeafSpan{SpanID: 2, Leaf: "b", Answered: false, RTTNanos: 999}, // unanswered never wins
		LeafSpan{SpanID: 3, Leaf: "c", Answered: true, RTTNanos: 300},
	)
	if sp := tr.SlowestSpan(); sp == nil || sp.Leaf != "c" {
		t.Fatalf("SlowestSpan = %+v, want leaf c", sp)
	}
	empty := mkTrace(2, time.Second)
	if sp := empty.SlowestSpan(); sp != nil {
		t.Fatalf("SlowestSpan on empty trace = %+v", sp)
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 8})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			tr.Record(mkTrace(RandomID(), time.Millisecond,
				LeafSpan{SpanID: RandomID(), Answered: true}))
		}
	}()
	for i := 0; i < 500; i++ {
		tr.Recent()
		tr.Slow()
		tr.Get(uint64(i))
	}
	<-done
}
