package obs

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testOpts(t *testing.T, dir string) RecorderOptions {
	t.Helper()
	var micros int64
	return RecorderOptions{
		Dir:       dir,
		Namespace: "obstest",
		Capacity:  8,
		Clock: func() int64 {
			micros++
			return micros
		},
	}
}

// TestKillAndReread is the crash scenario the recorder exists for: a
// process records phase events, dies without closing anything (the segment
// file simply survives in tmpfs), and a fresh "process" — a second
// OpenFlightRecorder on the same identity — reads the previous run's last
// recorded phase.
func TestKillAndReread(t *testing.T) {
	dir := t.TempDir()
	r1, err := OpenFlightRecorder(0, testOpts(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	r1.Record(EventNote, "process.start", "")
	r1.Record(EventBegin, "restart.copy_out", "")
	r1.Record(EventBegin, "copy-out:service_logs", "")
	r1.Record(EventFail, "copy-out:service_logs", "block 3: injected fault")
	// No Close: the "process" is killed here. The mmap'ed tmpfs file keeps
	// the bytes regardless.

	r2, err := OpenFlightRecorder(0, testOpts(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	prev := r2.Previous()
	if len(prev) != 4 {
		t.Fatalf("previous events = %d, want 4: %+v", len(prev), prev)
	}
	last := prev[len(prev)-1]
	if last.Phase != "copy-out:service_logs" || last.Kind != EventFail {
		t.Errorf("last event = %+v", last)
	}
	sum := Summarize(prev)
	if !sum.Failed || sum.FailurePhase != "copy-out:service_logs" ||
		!strings.Contains(sum.FailureDetail, "injected fault") {
		t.Errorf("summary = %+v", sum)
	}
	if sum.LastPhase != "copy-out:service_logs" {
		t.Errorf("last phase = %q", sum.LastPhase)
	}
	// Sequence numbering continues across runs so a merged dump orders.
	r2.Record(EventNote, "process.start", "")
	cur := r2.Events()
	if len(cur) != 1 || cur[0].Seq != prev[len(prev)-1].Seq+1 {
		t.Errorf("current events = %+v after previous %+v", cur, prev)
	}
}

func TestRingWraparound(t *testing.T) {
	dir := t.TempDir()
	r1, err := OpenFlightRecorder(0, testOpts(t, dir)) // capacity 8
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r1.Record(EventNote, "phase", fmt.Sprintf("event %d", i))
	}
	if got := len(r1.Events()); got != 8 {
		t.Fatalf("current events = %d, want capacity 8", got)
	}

	r2, err := OpenFlightRecorder(0, testOpts(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	prev := r2.Previous()
	if len(prev) != 8 {
		t.Fatalf("previous events = %d, want 8", len(prev))
	}
	// Only the newest 8 survive, in order.
	for i, ev := range prev {
		if want := fmt.Sprintf("event %d", 12+i); ev.Detail != want {
			t.Errorf("event %d detail = %q, want %q", i, ev.Detail, want)
		}
	}
}

// TestTornSlotSkipped corrupts one byte of a recorded slot — simulating a
// write torn by a crash — and checks the reader skips that slot instead of
// returning garbage.
func TestTornSlotSkipped(t *testing.T) {
	dir := t.TempDir()
	r1, err := OpenFlightRecorder(3, testOpts(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	r1.Record(EventBegin, "restart.copy_out", "")
	r1.Record(EventEnd, "restart.copy_out", "")
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "obstest-obs-leaf3-flightrec")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the second slot's phase field.
	b[recHeaderSize+recSlotSize+slotFixedSize] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenFlightRecorder(3, testOpts(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	prev := r2.Previous()
	if len(prev) != 1 {
		t.Fatalf("previous events = %d, want 1 (torn slot skipped)", len(prev))
	}
	if prev[0].Kind != EventBegin {
		t.Errorf("surviving event = %+v", prev[0])
	}
}

// TestVersionSkew rewrites the header version; the next open must treat the
// ring as unreadable, exactly like a data segment with layout skew.
func TestVersionSkew(t *testing.T) {
	dir := t.TempDir()
	r1, err := OpenFlightRecorder(0, testOpts(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	r1.Record(EventNote, "x", "")
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "obstest-obs-leaf0-flightrec")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b[4:], RecorderVersion+1)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenFlightRecorder(0, testOpts(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if prev := r2.Previous(); prev != nil {
		t.Errorf("previous = %+v, want nil on version skew", prev)
	}
}

func TestNoPreviousRun(t *testing.T) {
	r, err := OpenFlightRecorder(0, testOpts(t, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if prev := r.Previous(); prev != nil {
		t.Errorf("previous = %+v on first open", prev)
	}
	if sum := Summarize(nil); sum.Events != 0 || sum.Failed {
		t.Errorf("empty summary = %+v", sum)
	}
}

// TestConcurrentRecord drives Record from many goroutines (the parallel
// copy workers do exactly this); the race detector checks the locking and
// the ring must hold the newest capacity events intact.
func TestConcurrentRecord(t *testing.T) {
	opts := testOpts(t, t.TempDir())
	opts.Capacity = 64
	r, err := OpenFlightRecorder(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Record(EventNote, fmt.Sprintf("worker%d", w), "tick")
			}
		}(w)
	}
	wg.Wait()
	events := r.Events()
	if len(events) != 64 {
		t.Fatalf("events = %d, want full ring 64", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d: %d -> %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(EventNote, "x", "y") // must not panic
	if r.Events() != nil || r.Previous() != nil {
		t.Error("nil recorder returned events")
	}
	if err := r.Close(); err != nil {
		t.Error(err)
	}
}
