package obs

import (
	"sync"
	"testing"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/rowblock"
)

// collectEmit is a test Emit target that records every delivered batch.
type collectEmit struct {
	mu     sync.Mutex
	tables []string
	rows   map[string][]rowblock.Row
}

func (c *collectEmit) emit(table string, rows []rowblock.Row) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rows == nil {
		c.rows = make(map[string][]rowblock.Row)
	}
	c.tables = append(c.tables, table)
	c.rows[table] = append(c.rows[table], rows...)
	return nil
}

func (c *collectEmit) get(table string) []rowblock.Row {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]rowblock.Row(nil), c.rows[table]...)
}

func fixedClock(sec int64) func() time.Time {
	return func() time.Time { return time.Unix(sec, 0) }
}

func TestIsSystemTable(t *testing.T) {
	for table, want := range map[string]bool{
		SystemMetricsTable:     true,
		SystemTracesTable:      true,
		SystemRolloverTable:    true,
		SystemLeafMetricsTable: true,
		SystemRecorderTable:    true,
		"__system.other":       true,
		"service_logs":         false,
		"__systemish":          false,
		"":                     false,
	} {
		if got := IsSystemTable(table); got != want {
			t.Errorf("IsSystemTable(%q) = %v, want %v", table, got, want)
		}
	}
}

func TestSinkSnapshotRows(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("rows.added").Add(7)
	reg.Gauge("worker.busy").SetDuration(1500 * time.Microsecond)
	reg.Timer("restart.copy_in").Observe(2 * time.Millisecond)
	reg.Histogram("query.latency_hist").ObserveDuration(300 * time.Microsecond)

	var c collectEmit
	s := NewSink(SinkConfig{
		Emit:            c.emit,
		Source:          "leaf0",
		Registry:        reg,
		MetricsInterval: -1, // manual flushes only
		Clock:           fixedClock(1700000000),
	})
	defer s.Close()
	s.RecordSnapshot()
	if !s.Flush() {
		t.Fatal("flush failed")
	}

	rows := c.get(SystemMetricsTable)
	byName := map[string]rowblock.Row{}
	for _, r := range rows {
		byName[r.Cols["name"].Str] = r
	}
	cr, ok := byName["rows_added"] // canonical spelling, not the registry key
	if !ok {
		t.Fatalf("no rows_added row in %v", byName)
	}
	if cr.Time != 1700000000 || cr.Cols["type"].Str != "counter" ||
		cr.Cols["value"].Int != 7 || cr.Cols["source"].Str != "leaf0" {
		t.Errorf("counter row = %+v", cr)
	}
	if g := byName["worker_busy"]; g.Cols["unit"].Str != "us" || g.Cols["value"].Int != 1500 {
		t.Errorf("duration gauge row = %+v", g)
	}
	if tm := byName["restart_copy_in"]; tm.Cols["count"].Int != 1 || tm.Cols["sum_us"].Int != 2000 {
		t.Errorf("timer row = %+v", tm)
	}
	h := byName["query_latency_hist"]
	if h.Cols["count"].Int != 1 || h.Cols["p50"].Int != 300 || h.Cols["unit"].Str != "us" {
		t.Errorf("histogram row = %+v", h)
	}
	// Sink accounting landed in the registry.
	if got := reg.Counter("sink.rows").Value(); got != int64(len(rows)) {
		t.Errorf("sink.rows = %d, want %d", got, len(rows))
	}
}

func TestSinkTraceSuppressionAndSampling(t *testing.T) {
	var c collectEmit
	s := NewSink(SinkConfig{
		Emit:            c.emit,
		Source:          "aggd",
		MetricsInterval: -1,
		TraceSampleN:    2,
		Clock:           fixedClock(100),
	})
	defer s.Close()

	// Recursion suppression: a trace of a __system query never lands.
	s.RecordTrace(Trace{TraceID: 1, Table: SystemLeafMetricsTable, Slow: true})
	// Slow traces are always kept, sampling notwithstanding.
	for i := 0; i < 3; i++ {
		s.RecordTrace(Trace{TraceID: uint64(10 + i), Table: "service_logs", Slow: true, DurationNanos: 5e6})
	}
	// Non-slow traces sample 1-in-2.
	for i := 0; i < 4; i++ {
		s.RecordTrace(Trace{TraceID: uint64(20 + i), Table: "service_logs"})
	}
	s.Flush()

	rows := c.get(SystemTracesTable)
	if len(rows) != 5 { // 3 slow + 2 of 4 sampled
		t.Fatalf("trace rows = %d, want 5: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Cols["table"].Str == SystemLeafMetricsTable {
			t.Errorf("suppressed system-table trace leaked: %+v", r)
		}
	}
	slow := 0
	for _, r := range rows {
		if r.Cols["slow"].Int == 1 {
			slow++
		}
	}
	if slow != 3 {
		t.Errorf("slow rows = %d, want 3", slow)
	}
}

func TestSinkRecorderEvents(t *testing.T) {
	var c collectEmit
	s := NewSink(SinkConfig{Emit: c.emit, Source: "leaf1", MetricsInterval: -1, Clock: fixedClock(0)})
	defer s.Close()

	evs := []Event{
		{Seq: 1, UnixMicros: 5_000_123, KindName: "begin", Phase: "restart.copy_out"},
		{Seq: 2, UnixMicros: 5_100_456, KindName: "end", Phase: "restart.copy_out", Detail: "100ms"},
	}
	s.RecordRecorderEvents("previous", evs)
	s.Flush()

	rows := c.get(SystemRecorderTable)
	if len(rows) != 2 {
		t.Fatalf("recorder rows = %d", len(rows))
	}
	r := rows[1]
	if r.Time != 5 || r.Cols["run"].Str != "previous" || r.Cols["kind"].Str != "end" ||
		r.Cols["phase"].Str != "restart.copy_out" || r.Cols["t_us"].Int != 5_100_456 {
		t.Errorf("row = %+v", r)
	}
}

func TestSinkOverflowDropsNotBlocks(t *testing.T) {
	reg := metrics.NewRegistry()
	release := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	s := NewSink(SinkConfig{
		Emit: func(string, []rowblock.Row) error {
			once.Do(func() { close(blocked) })
			<-release
			return nil
		},
		Registry:        reg,
		MetricsInterval: -1,
		QueueSize:       2,
		Clock:           fixedClock(0),
	})
	row := []rowblock.Row{{Time: 1, Cols: map[string]rowblock.Value{"x": rowblock.Int64Value(1)}}}
	s.RecordRows(SystemRolloverTable, row) // drain goroutine picks this up and blocks
	<-blocked
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			s.RecordRows(SystemRolloverTable, row)
		}
		close(done)
	}()
	select {
	case <-done: // enqueues must return immediately even with Emit wedged
	case <-time.After(5 * time.Second):
		t.Fatal("RecordRows blocked on a wedged Emit")
	}
	if got := reg.Counter("sink.dropped").Value(); got < 8 {
		t.Errorf("sink.dropped = %d, want >= 8", got)
	}
	close(release)
	s.Close()
}

func TestSinkCloseDeliversQueued(t *testing.T) {
	var c collectEmit
	s := NewSink(SinkConfig{Emit: c.emit, MetricsInterval: -1, Clock: fixedClock(0)})
	row := []rowblock.Row{{Time: 1, Cols: map[string]rowblock.Value{"x": rowblock.Int64Value(1)}}}
	for i := 0; i < 5; i++ {
		s.RecordRows(SystemRolloverTable, row)
	}
	s.Close()
	if got := len(c.get(SystemRolloverTable)); got != 5 {
		t.Errorf("delivered %d rows after Close, want 5", got)
	}
	// Idempotent close, and post-close records are silently discarded.
	s.Close()
	s.RecordRows(SystemRolloverTable, row)

	// Nil sink: every method is a no-op.
	var nilSink *Sink
	nilSink.RecordRows(SystemRolloverTable, row)
	nilSink.RecordTrace(Trace{})
	nilSink.RecordSnapshot()
	nilSink.Close()
	if nilSink.Flush() {
		t.Error("nil sink Flush returned true")
	}
}

func TestSinkMetricsLoop(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("rows.added").Add(1)
	var c collectEmit
	s := NewSink(SinkConfig{
		Emit:            c.emit,
		Registry:        reg,
		MetricsInterval: 5 * time.Millisecond,
		Clock:           fixedClock(42),
	})
	defer s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.get(SystemMetricsTable)) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("metrics loop produced no __system.metrics rows")
}
