// Package obs is the cross-cutting observability layer: phase spans over
// the restart lifecycle and query path, a crash-surviving flight recorder,
// and the HTTP exposition every daemon serves.
//
// The paper's evaluation is a breakdown of where restart time goes (§4),
// and its operational story depends on knowing *why* a leaf took the disk
// path instead of shared memory. The span API feeds per-phase timers into a
// metrics.Registry; the flight recorder persists the most recent span and
// lifecycle events in a small shared memory segment of its own, so after a
// crash or failed restore the *next* process can read the previous run's
// last recorded phase and report, e.g., "fell back to disk because copy-out
// of table X failed mid-block".
//
// The recorder deliberately mirrors the paper's trust rule for data
// segments — the next process treats the previous contents as evidence, not
// state: every slot is CRC-guarded, a version number guards layout changes,
// and a torn or alien slot is skipped, never trusted.
package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"scuba/internal/shm"
)

// RecorderVersion is stamped into the flight recorder segment header. It is
// versioned independently of shm.LayoutVersion: the event slot layout can
// change without invalidating table segments and vice versa. A reader that
// finds a different version reports no previous events.
const RecorderVersion uint32 = 1

// recMagic identifies a flight recorder segment ("FLT1").
const recMagic uint32 = 0x31544c46

// recSegName is the recorder's segment name under its own namespace.
const recSegName = "flightrec"

// obsNamespaceSuffix isolates the recorder from the leaf's data segments:
// leaf.Start removes every data segment (prefix "<ns>-leaf<id>-") when it
// falls back to disk, and the flight recorder must survive exactly that
// event to explain it.
const obsNamespaceSuffix = "-obs"

// Header layout, little endian:
//
//	u32 magic "FLT1"
//	u32 recorder version
//	u32 capacity (slots)
//	u32 slot size (bytes)
//	u64 next sequence number (total events ever recorded)
//
// Slot layout (fixed size, one event per slot, ring-indexed by seq):
//
//	u32 crc (Castagnoli, over the rest of the slot)
//	u8  kind
//	u8  phase length
//	u16 detail length
//	u64 seq
//	i64 unix microseconds
//	[64]  phase bytes
//	[160] detail bytes
//
// An event write fills the slot body, then the CRC, then bumps the header's
// next-seq. A crash can tear at most the slot being written; its CRC will
// not match and the reader skips it.
const (
	recHeaderSize  = 4 + 4 + 4 + 4 + 8
	slotPhaseMax   = 64
	slotDetailMax  = 160
	slotFixedSize  = 4 + 1 + 1 + 2 + 8 + 8
	recSlotSize    = slotFixedSize + slotPhaseMax + slotDetailMax // 256
	defaultSlots   = 256
	maxRecordSlots = 1 << 16
)

var recCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EventKind classifies a flight recorder event.
type EventKind uint8

// Event kinds.
const (
	// EventBegin marks a phase starting.
	EventBegin EventKind = iota + 1
	// EventEnd marks a phase completing successfully.
	EventEnd
	// EventFail marks a phase failing; Detail carries the reason.
	EventFail
	// EventNote is a free-form lifecycle marker (process up, fallback
	// decisions, signals).
	EventNote
)

func (k EventKind) String() string {
	switch k {
	case EventBegin:
		return "begin"
	case EventEnd:
		return "end"
	case EventFail:
		return "fail"
	case EventNote:
		return "note"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded span or lifecycle event.
type Event struct {
	Seq        uint64    `json:"seq"`
	UnixMicros int64     `json:"unix_micros"`
	Kind       EventKind `json:"-"`
	KindName   string    `json:"kind"`
	Phase      string    `json:"phase"`
	Detail     string    `json:"detail,omitempty"`
}

// Time converts the event timestamp.
func (e Event) Time() time.Time { return time.UnixMicro(e.UnixMicros) }

// Recorder is a fixed-size ring of events persisted in its own shared
// memory segment. One recorder belongs to one daemon identity (leaf ID);
// opening it reads whatever the previous run left behind, then resets the
// ring for this run while continuing the sequence numbering, so a dump of
// both runs still orders globally.
type Recorder struct {
	mu       sync.Mutex
	seg      *shm.Segment
	m        *shm.Manager
	capacity int
	nextSeq  uint64
	previous []Event
	clock    func() int64 // unix microseconds; injectable for tests
	closed   bool
}

// RecorderOptions configure OpenFlightRecorder.
type RecorderOptions struct {
	// Dir is the shared memory directory (empty = shm.DefaultDir).
	Dir string
	// Namespace is the cluster namespace; the recorder appends "-obs" so
	// its segment survives the data manager's RemoveAll sweeps.
	Namespace string
	// Capacity is the ring size in events (0 = 256).
	Capacity int
	// DisableMmap forces the heap-backed segment fallback.
	DisableMmap bool
	// Clock supplies unix microseconds; nil means time.Now. Tests inject
	// fixed clocks for deterministic dumps.
	Clock func() int64
}

// OpenFlightRecorder opens (or creates) the flight recorder for one leaf
// identity. Events recorded by the previous run — even one that crashed
// mid-phase — are available via Previous; recording starts fresh for this
// run with continuing sequence numbers.
func OpenFlightRecorder(id int, opts RecorderOptions) (*Recorder, error) {
	ns := opts.Namespace
	if ns == "" {
		ns = "scuba"
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = defaultSlots
	}
	if capacity > maxRecordSlots {
		capacity = maxRecordSlots
	}
	clock := opts.Clock
	if clock == nil {
		clock = func() int64 { return time.Now().UnixMicro() }
	}
	m := shm.NewManager(id, shm.Options{
		Dir:         opts.Dir,
		Namespace:   ns + obsNamespaceSuffix,
		DisableMmap: opts.DisableMmap,
	})
	r := &Recorder{m: m, capacity: capacity, clock: clock}

	// Read the previous run's ring, if one survives and is readable.
	if prev, seq, err := readRing(m); err == nil {
		r.previous = prev
		r.nextSeq = seq
	}

	// Create (truncate) this run's ring. The previous events live only in
	// r.previous now — matching the data-segment rule that shared memory
	// contents are consumed exactly once.
	size := int64(recHeaderSize + capacity*recSlotSize)
	seg, err := m.CreateSegment(recSegName, size)
	if err != nil {
		return nil, fmt.Errorf("obs: create flight recorder: %w", err)
	}
	b := seg.Bytes()
	binary.LittleEndian.PutUint32(b[0:], recMagic)
	binary.LittleEndian.PutUint32(b[4:], RecorderVersion)
	binary.LittleEndian.PutUint32(b[8:], uint32(capacity))
	binary.LittleEndian.PutUint32(b[12:], recSlotSize)
	binary.LittleEndian.PutUint64(b[16:], r.nextSeq)
	r.seg = seg
	return r, nil
}

// errRecUnreadable covers every way a previous ring can be unusable.
var errRecUnreadable = errors.New("obs: flight recorder segment unreadable")

// readRing decodes the events of an existing recorder segment, oldest
// first, plus the next sequence number to continue from. Torn slots (bad
// CRC) and slots from older laps of the ring are skipped.
func readRing(m *shm.Manager) ([]Event, uint64, error) {
	seg, err := m.OpenSegment(recSegName)
	if err != nil {
		return nil, 0, errRecUnreadable
	}
	defer seg.Close()
	b := seg.Bytes()
	if len(b) < recHeaderSize {
		return nil, 0, errRecUnreadable
	}
	if binary.LittleEndian.Uint32(b[0:]) != recMagic {
		return nil, 0, errRecUnreadable
	}
	if binary.LittleEndian.Uint32(b[4:]) != RecorderVersion {
		// Layout changed between releases: like a data-segment version
		// skew, the contents are unreadable by this binary.
		return nil, 0, errRecUnreadable
	}
	capacity := int(binary.LittleEndian.Uint32(b[8:]))
	slotSize := int(binary.LittleEndian.Uint32(b[12:]))
	nextSeq := binary.LittleEndian.Uint64(b[16:])
	if capacity <= 0 || capacity > maxRecordSlots || slotSize != recSlotSize {
		return nil, 0, errRecUnreadable
	}
	if int64(recHeaderSize+capacity*slotSize) > seg.Size() {
		return nil, 0, errRecUnreadable
	}
	// The live window is the last min(nextSeq, capacity) sequence numbers.
	// A crash may have torn the newest slot (CRC skips it), and the header
	// bump may not have happened for a fully written slot — scan one seq
	// past the header to catch that case.
	var events []Event
	lo := uint64(0)
	if nextSeq > uint64(capacity) {
		lo = nextSeq - uint64(capacity)
	}
	for seq := lo; seq <= nextSeq; seq++ {
		slot := b[recHeaderSize+int(seq%uint64(capacity))*slotSize:]
		ev, ok := decodeSlot(slot[:slotSize], seq)
		if ok {
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	maxSeq := nextSeq
	if n := len(events); n > 0 && events[n-1].Seq+1 > maxSeq {
		maxSeq = events[n-1].Seq + 1
	}
	return events, maxSeq, nil
}

// decodeSlot validates one slot against its CRC and expected sequence.
func decodeSlot(slot []byte, wantSeq uint64) (Event, bool) {
	crc := binary.LittleEndian.Uint32(slot[0:])
	if crc32.Checksum(slot[4:], recCRCTable) != crc {
		return Event{}, false
	}
	kind := EventKind(slot[4])
	phaseLen := int(slot[5])
	detailLen := int(binary.LittleEndian.Uint16(slot[6:]))
	seq := binary.LittleEndian.Uint64(slot[8:])
	if seq != wantSeq || phaseLen > slotPhaseMax || detailLen > slotDetailMax {
		return Event{}, false
	}
	ev := Event{
		Seq:        seq,
		UnixMicros: int64(binary.LittleEndian.Uint64(slot[16:])),
		Kind:       kind,
		KindName:   kind.String(),
		Phase:      string(slot[slotFixedSize : slotFixedSize+phaseLen]),
		Detail:     string(slot[slotFixedSize+slotPhaseMax : slotFixedSize+slotPhaseMax+detailLen]),
	}
	return ev, true
}

// Record appends one event to the ring. Safe for concurrent use (the copy
// workers of a parallel shutdown record per-table events from their own
// goroutines). Recording on a closed recorder is a no-op.
func (r *Recorder) Record(kind EventKind, phase, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.seg == nil {
		return
	}
	if len(phase) > slotPhaseMax {
		phase = phase[:slotPhaseMax]
	}
	if len(detail) > slotDetailMax {
		detail = detail[:slotDetailMax]
	}
	seq := r.nextSeq
	b := r.seg.Bytes()
	slot := b[recHeaderSize+int(seq%uint64(r.capacity))*recSlotSize:]
	slot = slot[:recSlotSize]
	slot[4] = byte(kind)
	slot[5] = byte(len(phase))
	binary.LittleEndian.PutUint16(slot[6:], uint16(len(detail)))
	binary.LittleEndian.PutUint64(slot[8:], seq)
	binary.LittleEndian.PutUint64(slot[16:], uint64(r.clock()))
	copy(slot[slotFixedSize:slotFixedSize+slotPhaseMax], phase)
	for i := slotFixedSize + len(phase); i < slotFixedSize+slotPhaseMax; i++ {
		slot[i] = 0
	}
	copy(slot[slotFixedSize+slotPhaseMax:], detail)
	for i := slotFixedSize + slotPhaseMax + len(detail); i < recSlotSize; i++ {
		slot[i] = 0
	}
	binary.LittleEndian.PutUint32(slot[0:], crc32.Checksum(slot[4:], recCRCTable))
	// Bump the published sequence only after the slot is complete: a crash
	// here leaves a valid slot one past the header, which readRing's
	// one-past scan still finds.
	r.nextSeq = seq + 1
	binary.LittleEndian.PutUint64(b[16:], r.nextSeq)
}

// Previous returns the events recovered from the previous run (oldest
// first), or nil when none survived.
func (r *Recorder) Previous() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.previous...)
}

// Events returns this run's events so far, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seg == nil {
		return nil
	}
	events, _, err := decodeCurrent(r.seg.Bytes(), r.capacity, r.nextSeq)
	if err != nil {
		return nil
	}
	return events
}

func decodeCurrent(b []byte, capacity int, nextSeq uint64) ([]Event, uint64, error) {
	var events []Event
	lo := uint64(0)
	if nextSeq > uint64(capacity) {
		lo = nextSeq - uint64(capacity)
	}
	for seq := lo; seq < nextSeq; seq++ {
		slot := b[recHeaderSize+int(seq%uint64(capacity))*recSlotSize:]
		if ev, ok := decodeSlot(slot[:recSlotSize], seq); ok {
			events = append(events, ev)
		}
	}
	return events, nextSeq, nil
}

// Close flushes and unmaps the ring. The backing segment file survives for
// the next process, which is the whole point.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.seg.Close()
}

// Remove deletes the recorder's segment file (tests and decommissioning).
func (r *Recorder) Remove() error {
	if r == nil {
		return nil
	}
	if err := r.Close(); err != nil {
		return err
	}
	return r.m.RemoveSegment(recSegName)
}

// RunSummary condenses a run's event stream into the questions an operator
// asks first: what was the last thing the process did, and did it fail?
type RunSummary struct {
	// Events is how many events the stream holds.
	Events int `json:"events"`
	// LastPhase is the phase of the newest event.
	LastPhase string `json:"last_phase,omitempty"`
	// LastKind is the kind of the newest event ("begin" means the run
	// ended mid-phase — a crash or kill during that phase).
	LastKind string `json:"last_kind,omitempty"`
	// Failed reports whether any phase failed.
	Failed bool `json:"failed"`
	// FailureDetail is the newest failure's reason.
	FailureDetail string `json:"failure_detail,omitempty"`
	// FailurePhase is the newest failure's phase.
	FailurePhase string `json:"failure_phase,omitempty"`
}

// Summarize condenses events (oldest first) into a RunSummary.
func Summarize(events []Event) RunSummary {
	s := RunSummary{Events: len(events)}
	if len(events) == 0 {
		return s
	}
	last := events[len(events)-1]
	s.LastPhase, s.LastKind = last.Phase, last.Kind.String()
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind == EventFail {
			s.Failed = true
			s.FailurePhase = events[i].Phase
			s.FailureDetail = events[i].Detail
			break
		}
	}
	return s
}
