package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// RecoveryDump is the /debug/recovery response body.
type RecoveryDump struct {
	// Recovery is daemon-specific recovery state (leaf.RecoveryInfo for
	// scubad; nil for daemons without a recovery notion).
	Recovery any `json:"recovery,omitempty"`
	// PreviousRun summarizes the flight-recorder events left by the
	// previous process — the answer to "why did the restore fail".
	PreviousRun *RunSummary `json:"previous_run,omitempty"`
	// PreviousEvents is the previous run's full event dump, oldest first.
	PreviousEvents []Event `json:"previous_events,omitempty"`
	// CurrentRun summarizes this process's events so far.
	CurrentRun *RunSummary `json:"current_run,omitempty"`
	// CurrentEvents is this run's full event dump, oldest first.
	CurrentEvents []Event `json:"current_events,omitempty"`
}

// HandlerConfig configures the daemon observability mux.
type HandlerConfig struct {
	// Registry backs /metrics (required in practice; nil serves empty).
	Registry interface{ String() string }
	// Recorder backs the flight-recorder half of /debug/recovery (nil for
	// daemons without one).
	Recorder *Recorder
	// Recovery supplies the daemon-specific half of /debug/recovery (nil
	// omits it). Called per request, so it can return live state.
	Recovery func() any
	// Tracer backs /debug/traces and /debug/slow (nil omits both — only the
	// aggregator daemon assembles traces).
	Tracer *Tracer
}

// TraceDump is the /debug/traces and /debug/slow response body.
type TraceDump struct {
	// SlowThresholdNanos is the fixed slow threshold (0 = adaptive p99).
	SlowThresholdNanos int64   `json:"slow_threshold_nanos"`
	Traces             []Trace `json:"traces"`
}

// Handler builds the daemon observability mux:
//
//	/metrics         registry text format
//	/debug/recovery  RecoveryDump JSON
//	/debug/pprof/*   net/http/pprof
//	/                plain-text index of the above
func Handler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	started := time.Now()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			prom, ok := cfg.Registry.(interface{ Prometheus() string })
			if !ok {
				http.Error(w, "prometheus exposition unavailable", http.StatusNotImplemented)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprint(w, prom.Prometheus())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Registry != nil {
			fmt.Fprintln(w, cfg.Registry.String())
		}
	})

	mux.HandleFunc("/debug/recovery", func(w http.ResponseWriter, _ *http.Request) {
		dump := RecoveryDump{}
		if cfg.Recovery != nil {
			dump.Recovery = cfg.Recovery()
		}
		if cfg.Recorder != nil {
			prev := cfg.Recorder.Previous()
			cur := cfg.Recorder.Events()
			if len(prev) > 0 {
				s := Summarize(prev)
				dump.PreviousRun = &s
				dump.PreviousEvents = prev
			}
			if len(cur) > 0 {
				s := Summarize(cur)
				dump.CurrentRun = &s
				dump.CurrentEvents = cur
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dump) //nolint:errcheck // best effort over HTTP
	})

	if cfg.Tracer != nil {
		writeTraces := func(w http.ResponseWriter, traces []Trace) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(TraceDump{ //nolint:errcheck // best effort over HTTP
				SlowThresholdNanos: cfg.Tracer.SlowThreshold().Nanoseconds(),
				Traces:             traces,
			})
		}
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			if idStr := r.URL.Query().Get("id"); idStr != "" {
				id, err := strconv.ParseUint(idStr, 10, 64)
				if err != nil {
					http.Error(w, "bad trace id", http.StatusBadRequest)
					return
				}
				tr := cfg.Tracer.Get(id)
				if tr == nil {
					http.Error(w, "trace not found (rotated out?)", http.StatusNotFound)
					return
				}
				writeTraces(w, []Trace{*tr})
				return
			}
			writeTraces(w, cfg.Tracer.Recent())
		})
		mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
			writeTraces(w, cfg.Tracer.Slow())
		})
	}

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "scuba observability (up %v)\n\n/metrics\n/debug/recovery\n/debug/pprof/\n",
			time.Since(started).Round(time.Second))
		if cfg.Tracer != nil {
			fmt.Fprintf(w, "/debug/traces\n/debug/slow\n")
		}
	})
	return mux
}

// HTTPServer is one daemon's observability listener.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartHTTP serves the handler on addr (use ":0" for an ephemeral port) in
// a background goroutine.
func StartHTTP(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: http listen: %w", err)
	}
	s := &HTTPServer{srv: &http.Server{Handler: h}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the bound address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *HTTPServer) Close() error { return s.srv.Close() }
