package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scuba/internal/metrics"
)

func newTestHandler(t *testing.T) (http.Handler, *metrics.Registry, *Recorder) {
	t.Helper()
	reg := metrics.NewRegistry()
	rec, err := OpenFlightRecorder(0, testOpts(t, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	h := Handler(HandlerConfig{
		Registry: reg,
		Recorder: rec,
		Recovery: func() any { return map[string]string{"path": "memory"} },
	})
	return h, reg, rec
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestMetricsEndpoint(t *testing.T) {
	h, reg, _ := newTestHandler(t)
	reg.Counter("rpc.query").Add(3)
	reg.Timer(PhaseCopyIn).Observe(5 * time.Millisecond)
	reg.Histogram("query.latency_hist").ObserveDuration(2 * time.Millisecond)

	srv := httptest.NewServer(h)
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"counter rpc_query 3",
		"timer restart_copy_in count=1",
		"histogram query_latency_hist count=1",
		"p50=", "p95=", "p99=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestMetricsEndpointPrometheus(t *testing.T) {
	h, reg, _ := newTestHandler(t)
	reg.Counter("rpc.query").Add(3)
	reg.Histogram("query.latency_hist").ObserveDuration(2 * time.Millisecond)

	srv := httptest.NewServer(h)
	defer srv.Close()
	code, body := get(t, srv, "/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"# TYPE scuba_rpc_query counter",
		"scuba_rpc_query 3",
		"# TYPE scuba_query_latency_hist_seconds histogram",
		`scuba_query_latency_hist_seconds_bucket{le="+Inf"} 1`,
		"scuba_query_latency_hist_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestDebugRecoveryEndpoint(t *testing.T) {
	h, _, rec := newTestHandler(t)
	rec.Record(EventBegin, PhaseCopyIn, "")
	rec.Record(EventEnd, PhaseCopyIn, "1ms")

	srv := httptest.NewServer(h)
	defer srv.Close()
	code, body := get(t, srv, "/debug/recovery")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var dump RecoveryDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if dump.CurrentRun == nil || dump.CurrentRun.LastPhase != PhaseCopyIn {
		t.Errorf("current run = %+v", dump.CurrentRun)
	}
	if len(dump.CurrentEvents) != 2 {
		t.Errorf("current events = %+v", dump.CurrentEvents)
	}
	if rec, ok := dump.Recovery.(map[string]any); !ok || rec["path"] != "memory" {
		t.Errorf("recovery = %+v", dump.Recovery)
	}
}

func TestPprofAndIndex(t *testing.T) {
	h, _, _ := newTestHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()
	if code, body := get(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
	if code, body := get(t, srv, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", code, body)
	}
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", code)
	}
}

func TestStartHTTP(t *testing.T) {
	h, reg, _ := newTestHandler(t)
	reg.Counter("up").Add(1)
	s, err := StartHTTP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "counter up 1") {
		t.Errorf("body = %q", b)
	}
}
