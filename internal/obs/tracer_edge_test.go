package obs

import (
	"testing"
	"time"
)

// Adaptive slow-query sampling edge cases pinned: the warm-up window, ties
// at the running p99, and ring wraparound.

// During the first MinSamples observations the adaptive sampler must stay
// silent — there is no distribution to judge against yet — no matter how
// slow the queries are.
func TestTracerAdaptiveWarmupNeverSlow(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 128, SlowCapacity: 128}) // MinSamples defaults to 32
	for i := 0; i < 32; i++ {
		d := time.Duration(i+1) * time.Hour // absurdly slow
		if tr.Record(Trace{TraceID: uint64(i + 1), DurationNanos: d.Nanoseconds()}) {
			t.Fatalf("sample %d flagged slow during warm-up", i)
		}
	}
	if got := len(tr.Slow()); got != 0 {
		t.Fatalf("slow log has %d entries after warm-up", got)
	}
}

// A latency exactly equal to the running p99 is NOT slow: in a tight uniform
// workload the typical latency is the p99 estimate, and the slow log should
// stay empty until a genuine outlier arrives.
func TestTracerAdaptiveTieAtP99(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 128, SlowCapacity: 128})
	d := 1024 * time.Microsecond // exact power of two: bucket midpoint clamps to it
	for i := 0; i < 32; i++ {
		tr.Record(Trace{TraceID: uint64(i + 1), DurationNanos: d.Nanoseconds()})
	}
	// Past warm-up now. The same latency again ties the running p99.
	if tr.Record(Trace{TraceID: 100, DurationNanos: d.Nanoseconds()}) {
		t.Fatal("tie at running p99 flagged slow; rule is strictly-above")
	}
	// A real outlier is caught.
	if !tr.Record(Trace{TraceID: 101, DurationNanos: (100 * d).Nanoseconds()}) {
		t.Fatal("100x outlier not flagged slow")
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].TraceID != 101 {
		t.Fatalf("slow log = %+v", slow)
	}
}

// The recent ring drops oldest-first once full; Get finds only retained
// traces; Recent returns newest first. The slow ring is bounded the same way.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(TracerOptions{
		Capacity:      4,
		SlowCapacity:  2,
		SlowThreshold: time.Millisecond,
	})
	for i := 1; i <= 10; i++ {
		tr.Record(Trace{TraceID: uint64(i), DurationNanos: (2 * time.Millisecond).Nanoseconds()})
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(recent))
	}
	for i, want := range []uint64{10, 9, 8, 7} { // newest first
		if recent[i].TraceID != want {
			t.Fatalf("recent[%d] = %d, want %d (full: %+v)", i, recent[i].TraceID, want, recent)
		}
	}
	slow := tr.Slow()
	if len(slow) != 2 || slow[0].TraceID != 10 || slow[1].TraceID != 9 {
		t.Fatalf("slow ring = %+v", slow)
	}
	// Rotated-out traces are gone from both rings; retained ones resolve.
	if got := tr.Get(3); got != nil {
		t.Errorf("Get(3) = %+v, want nil after rotation", got)
	}
	if got := tr.Get(10); got == nil || got.TraceID != 10 {
		t.Errorf("Get(10) = %+v", got)
	}
}

// The OnRecord hook observes every recorded trace after classification,
// with Slow already set.
func TestTracerOnRecordHook(t *testing.T) {
	var seen []Trace
	tr := NewTracer(TracerOptions{
		SlowThreshold: time.Millisecond,
		OnRecord:      func(tr Trace) { seen = append(seen, tr) },
	})
	tr.Record(Trace{TraceID: 1, DurationNanos: (2 * time.Millisecond).Nanoseconds()})
	tr.Record(Trace{TraceID: 2, DurationNanos: time.Microsecond.Nanoseconds()})
	if len(seen) != 2 {
		t.Fatalf("hook saw %d traces, want 2", len(seen))
	}
	if !seen[0].Slow || seen[1].Slow {
		t.Errorf("hook saw wrong classification: %+v", seen)
	}
}
