package obs

// Scuba-on-Scuba: the self-telemetry sink feeds the system's own
// observability data — metric-registry snapshots, completed trace
// summaries, flight-recorder events, rollover timelines, scraped leaf
// state — back through the normal ingest path into reserved __system.*
// tables, so operators query the cluster's health with the same query
// engine the cluster serves. Because __system tables are ordinary leaf
// tables, they ride the shm restart path: restart history survives
// restarts.
//
// Two rules keep the loop from feeding on itself:
//
//   - recursion suppression: traces of queries against __system.* tables
//     are never converted into __system.traces rows (RecordTrace checks
//     IsSystemTable on the trace's table), so health dashboards polling
//     the system tables do not generate telemetry about their own polls;
//   - the hot path never blocks on telemetry: every Record* call is a
//     non-blocking enqueue onto a bounded queue drained by one background
//     goroutine; overflow drops the batch and counts sink.dropped.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/rowblock"
)

// Reserved self-telemetry tables. Everything under SystemTablePrefix is
// written by the sink and its feeders, never by user ingest.
const (
	// SystemTablePrefix marks a table as self-telemetry.
	SystemTablePrefix = "__system."
	// SystemMetricsTable holds per-daemon metric-registry snapshots (one
	// row per metric per flush).
	SystemMetricsTable = "__system.metrics"
	// SystemTracesTable holds completed distributed-trace summaries.
	SystemTracesTable = "__system.traces"
	// SystemRecorderTable holds flight-recorder events — including the
	// previous run's events recovered after a crash, so crash forensics
	// are queryable, not just logged at boot.
	SystemRecorderTable = "__system.recorder"
	// SystemRolloverTable holds rolling-restart timelines: per-restart
	// outcomes and the availability probe's coverage/latency points.
	SystemRolloverTable = "__system.rollover"
	// SystemLeafMetricsTable holds the aggregator's cluster-scraper view:
	// one row per ACTIVE leaf per scrape with its stats, key counters and
	// shard-coverage state.
	SystemLeafMetricsTable = "__system.leaf_metrics"
	// SystemProfilesTable holds the continuous profiler's folded captures:
	// one row per top-N function per capture window, plus a "(total)" row,
	// tagged with the trigger (interval / slow_query / restart / gc_pause)
	// and, for slow queries, the trace ID that tripped the capture.
	SystemProfilesTable = "__system.profiles"
)

// IsSystemTable reports whether a table is a reserved self-telemetry table.
func IsSystemTable(name string) bool {
	return strings.HasPrefix(name, SystemTablePrefix)
}

// SinkConfig configures a self-telemetry Sink.
type SinkConfig struct {
	// Emit delivers one batch of rows to a __system table — typically
	// leaf.AddRows on the local leaf (scubad) or a round-robin AddRows RPC
	// over the cluster's live leaves (scuba-aggd). Called from the sink's
	// single drain goroutine, never from the caller's hot path. Required.
	Emit func(table string, rows []rowblock.Row) error
	// Source labels every row this sink produces (the daemon's identity —
	// a leaf address, "aggd", "tailer:<category>").
	Source string
	// Registry, when non-nil, is snapshotted into __system.metrics every
	// MetricsInterval and receives the sink's own sink.rows / sink.dropped
	// / sink.errors counters.
	Registry *metrics.Registry
	// MetricsInterval is the __system.metrics snapshot period (default
	// 15s; negative disables the loop, e.g. for tests that flush manually).
	MetricsInterval time.Duration
	// TraceSampleN keeps 1 in N non-slow traces (default 1 = all); slow
	// traces are always kept.
	TraceSampleN int
	// QueueSize bounds the pending-batch queue (default 128).
	QueueSize int
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// OnError observes delivery errors (in addition to the sink.errors
	// counter). Optional.
	OnError func(error)
}

type sinkBatch struct {
	table string
	rows  []rowblock.Row
	ack   chan struct{} // non-nil for Flush sentinels
}

// Sink converts observability data into typed rows and delivers them
// asynchronously through Emit. All methods are safe for concurrent use and
// are no-ops on a nil *Sink, so daemons can wire it unconditionally.
type Sink struct {
	cfg  SinkConfig
	ch   chan sinkBatch
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	rowsCount *metrics.Counter
	dropped   *metrics.Counter
	errors    *metrics.Counter

	mu      sync.Mutex
	nTraces int64
}

// NewSink creates and starts a sink. Panics if cfg.Emit is nil — a sink
// with nowhere to deliver is a programming error, not a runtime state.
func NewSink(cfg SinkConfig) *Sink {
	if cfg.Emit == nil {
		panic("obs: SinkConfig.Emit is required")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 128
	}
	if cfg.TraceSampleN <= 0 {
		cfg.TraceSampleN = 1
	}
	if cfg.MetricsInterval == 0 {
		cfg.MetricsInterval = 15 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Sink{
		cfg:  cfg,
		ch:   make(chan sinkBatch, cfg.QueueSize),
		done: make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		s.rowsCount = reg.Counter("sink.rows")
		s.dropped = reg.Counter("sink.dropped")
		s.errors = reg.Counter("sink.errors")
	}
	s.wg.Add(1)
	go s.drain()
	if cfg.Registry != nil && cfg.MetricsInterval > 0 {
		s.wg.Add(1)
		go s.metricsLoop()
	}
	return s
}

// Close stops the background goroutines after delivering everything already
// queued. Idempotent.
func (s *Sink) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Flush blocks until every batch enqueued before the call has been handed
// to Emit. Returns false if the sink is closed or the queue is full.
func (s *Sink) Flush() bool {
	if s == nil {
		return false
	}
	ack := make(chan struct{})
	select {
	case <-s.done:
		return false
	case s.ch <- sinkBatch{ack: ack}:
	default:
		return false
	}
	select {
	case <-ack:
		return true
	case <-s.done:
		return false
	}
}

func (s *Sink) drain() {
	defer s.wg.Done()
	for {
		select {
		case b := <-s.ch:
			s.deliver(b)
		case <-s.done:
			// Drain what is already buffered, then stop.
			for {
				select {
				case b := <-s.ch:
					s.deliver(b)
				default:
					return
				}
			}
		}
	}
}

func (s *Sink) deliver(b sinkBatch) {
	if b.ack != nil {
		close(b.ack)
		return
	}
	if err := s.cfg.Emit(b.table, b.rows); err != nil {
		if s.errors != nil {
			s.errors.Add(1)
		}
		if s.cfg.OnError != nil {
			s.cfg.OnError(fmt.Errorf("obs: sink emit %s: %w", b.table, err))
		}
		return
	}
	if s.rowsCount != nil {
		s.rowsCount.Add(int64(len(b.rows)))
	}
}

func (s *Sink) metricsLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.MetricsInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.RecordSnapshot()
		case <-s.done:
			return
		}
	}
}

// put enqueues one batch without ever blocking; overflow drops it.
func (s *Sink) put(table string, rows []rowblock.Row) {
	if s == nil || len(rows) == 0 {
		return
	}
	select {
	case <-s.done:
		return
	default:
	}
	select {
	case s.ch <- sinkBatch{table: table, rows: rows}:
	default:
		if s.dropped != nil {
			s.dropped.Add(1)
		}
	}
}

// RecordRows enqueues pre-built rows for a __system table — the generic
// entry point used by the cluster scraper and the rollover driver.
func (s *Sink) RecordRows(table string, rows []rowblock.Row) {
	s.put(table, rows)
}

// RecordSnapshot converts the registry's current snapshot into
// __system.metrics rows (one per metric, canonical snake_case names) and
// enqueues them. No-op without a registry.
func (s *Sink) RecordSnapshot() {
	if s == nil || s.cfg.Registry == nil {
		return
	}
	s.put(SystemMetricsTable, SnapshotRows(s.cfg.Registry.Snapshot(), s.cfg.Source, s.cfg.Clock().Unix()))
}

// RecordTrace converts one completed trace into a __system.traces row.
// Traces of queries against __system tables are suppressed (recursion), and
// non-slow traces are sampled 1-in-TraceSampleN. Wire it as the tracer's
// OnRecord hook.
func (s *Sink) RecordTrace(tr Trace) {
	if s == nil || IsSystemTable(tr.Table) {
		return
	}
	if !tr.Slow && s.cfg.TraceSampleN > 1 {
		s.mu.Lock()
		n := s.nTraces
		s.nTraces++
		s.mu.Unlock()
		if n%int64(s.cfg.TraceSampleN) != 0 {
			return
		}
	}
	slow := int64(0)
	if tr.Slow {
		slow = 1
	}
	row := rowblock.Row{
		Time: s.cfg.Clock().Unix(),
		Cols: map[string]rowblock.Value{
			"source":          rowblock.StringValue(s.cfg.Source),
			"trace_id":        rowblock.Int64Value(int64(tr.TraceID)),
			"query":           rowblock.StringValue(tr.Query),
			"table":           rowblock.StringValue(tr.Table),
			"duration_us":     rowblock.Int64Value(tr.DurationNanos / 1e3),
			"leaves_total":    rowblock.Int64Value(int64(tr.LeavesTotal)),
			"leaves_answered": rowblock.Int64Value(int64(tr.LeavesAnswered)),
			"shards_total":    rowblock.Int64Value(int64(tr.ShardsTotal)),
			"shards_answered": rowblock.Int64Value(int64(tr.ShardsAnswered)),
			"slow":            rowblock.Int64Value(slow),
			"spans":           rowblock.Int64Value(int64(len(tr.Spans))),
		},
	}
	s.put(SystemTracesTable, []rowblock.Row{row})
}

// RecordRecorderEvents converts flight-recorder events into
// __system.recorder rows. run labels which process the events belong to
// ("previous" for events recovered after a crash or restart, "current" for
// this process's own). Each row keeps the event's own µs timestamp so the
// crash timeline stays exact even though row time is in seconds.
func (s *Sink) RecordRecorderEvents(run string, events []Event) {
	if s == nil || len(events) == 0 {
		return
	}
	rows := make([]rowblock.Row, 0, len(events))
	for _, ev := range events {
		rows = append(rows, rowblock.Row{
			Time: ev.UnixMicros / 1e6,
			Cols: map[string]rowblock.Value{
				"source": rowblock.StringValue(s.cfg.Source),
				"run":    rowblock.StringValue(run),
				"seq":    rowblock.Int64Value(int64(ev.Seq)),
				"kind":   rowblock.StringValue(ev.KindName),
				"phase":  rowblock.StringValue(ev.Phase),
				"detail": rowblock.StringValue(ev.Detail),
				"t_us":   rowblock.Int64Value(ev.UnixMicros),
			},
		})
	}
	s.put(SystemRecorderTable, rows)
}

// SnapshotRows converts a metrics snapshot into __system.metrics rows: one
// row per metric, named canonically, stamped with source and time. Timers
// and histograms flatten to count/sum/min/max/mean (+p50/p95/p99 for
// histograms), all durations in whole microseconds.
func SnapshotRows(snap metrics.Snapshot, source string, now int64) []rowblock.Row {
	rows := make([]rowblock.Row, 0,
		len(snap.Counters)+len(snap.Gauges)+len(snap.Timers)+len(snap.Histograms))
	base := func(typ, name string) map[string]rowblock.Value {
		return map[string]rowblock.Value{
			"source": rowblock.StringValue(source),
			"type":   rowblock.StringValue(typ),
			"name":   rowblock.StringValue(metrics.CanonicalName(name)),
		}
	}
	for name, v := range snap.Counters {
		cols := base("counter", name)
		cols["value"] = rowblock.Int64Value(v)
		rows = append(rows, rowblock.Row{Time: now, Cols: cols})
	}
	for name, g := range snap.Gauges {
		cols := base("gauge", name)
		cols["value"] = rowblock.Int64Value(g.Value)
		if g.Unit != "" {
			cols["unit"] = rowblock.StringValue(g.Unit)
		}
		rows = append(rows, rowblock.Row{Time: now, Cols: cols})
	}
	for name, st := range snap.Timers {
		cols := base("timer", name)
		cols["count"] = rowblock.Int64Value(st.Count)
		cols["sum_us"] = rowblock.Int64Value(st.Total.Microseconds())
		cols["min_us"] = rowblock.Int64Value(st.Min.Microseconds())
		cols["max_us"] = rowblock.Int64Value(st.Max.Microseconds())
		cols["mean_us"] = rowblock.Int64Value(st.Mean.Microseconds())
		rows = append(rows, rowblock.Row{Time: now, Cols: cols})
	}
	for name, st := range snap.Histograms {
		cols := base("histogram", name)
		cols["count"] = rowblock.Int64Value(st.Count)
		cols["sum"] = rowblock.Int64Value(st.Sum)
		cols["min"] = rowblock.Int64Value(st.Min)
		cols["max"] = rowblock.Int64Value(st.Max)
		cols["mean"] = rowblock.Int64Value(st.Mean())
		cols["p50"] = rowblock.Int64Value(st.P50)
		cols["p95"] = rowblock.Int64Value(st.P95)
		cols["p99"] = rowblock.Int64Value(st.P99)
		if st.IsDuration {
			cols["unit"] = rowblock.StringValue("us")
		}
		rows = append(rows, rowblock.Row{Time: now, Cols: cols})
	}
	return rows
}
