package obs

// Distributed per-query tracing, Dapper-style: the aggregator that receives
// a query stamps it with a trace ID and one span ID per leaf RPC; the wire
// protocol carries the context in the request envelope, each leaf answers
// with an ExecStats block, and the aggregator assembles the spans into a
// Trace. Traces land in two bounded in-memory rings — the last N queries and
// a tail-sampled slow-query log — served at /debug/traces and /debug/slow on
// the aggregator daemon, so any single slow query can be explained end to
// end while leaves restart and roll over.

import (
	"math/rand"
	"sync"
	"time"

	"scuba/internal/metrics"
)

// TraceContext is the trace identity carried in every traced request
// envelope. The zero value means "untraced" — leaves skip ExecStats
// collection entirely — and gob omits zero fields, so untraced and pre-trace
// peers pay nothing.
type TraceContext struct {
	// TraceID identifies the whole query across every leaf it touches.
	TraceID uint64
	// SpanID identifies one leaf's share of the query. It is stamped once by
	// the aggregator before the first attempt, so wire-client retries reuse
	// it and the assembled trace can deduplicate retried RPCs.
	SpanID uint64
}

// ExecStats is one leaf's structured execution report, returned in the query
// response next to the result. All durations are nanoseconds.
type ExecStats struct {
	// SpanID echoes the request's span, tying the report to its trace slot.
	SpanID uint64 `json:"span_id"`
	// Table is the queried table.
	Table string `json:"table"`
	// Recovery says where this table's data came from on the leaf's last
	// start: "memory" (shared memory), "disk", "quarantined" (shm segment
	// rejected, re-read from disk), "mixed", or "none" (fresh ingest).
	Recovery string `json:"recovery"`
	// LatencyNanos is the leaf-side execution wall time.
	LatencyNanos int64 `json:"latency_nanos"`
	// Per-phase breakdown (cumulative across blocks and scan workers).
	DecodeNanos int64 `json:"decode_nanos"`
	PruneNanos  int64 `json:"prune_nanos"`
	ScanNanos   int64 `json:"scan_nanos"`
	MergeNanos  int64 `json:"merge_nanos"`
	// Work accounting.
	RowsScanned   int64 `json:"rows_scanned"`
	BlocksScanned int64 `json:"blocks_scanned"`
	BlocksPruned  int64 `json:"blocks_pruned"`
	BlocksSkipped int64 `json:"blocks_skipped"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	// ShardsServed counts how many shards of the table this leaf answered
	// for (0 on unsharded deployments, where the leaf serves the whole
	// table). Additive: pre-shard peers decode it as zero.
	ShardsServed int `json:"shards_served,omitempty"`
}

// DominantPhase names the largest phase of the breakdown and its share of
// the summed phase time (0 when nothing was recorded).
func (e *ExecStats) DominantPhase() (string, int64) {
	name, v := "decode", e.DecodeNanos
	if e.PruneNanos > v {
		name, v = "prune", e.PruneNanos
	}
	if e.ScanNanos > v {
		name, v = "scan", e.ScanNanos
	}
	if e.MergeNanos > v {
		name, v = "merge", e.MergeNanos
	}
	if v == 0 {
		return "", 0
	}
	return name, v
}

// LeafSpan is one leaf's slot in an assembled trace.
type LeafSpan struct {
	SpanID uint64 `json:"span_id"`
	// Leaf labels the target (its address in a distributed deployment).
	Leaf string `json:"leaf"`
	// Answered is false for leaves that errored or were abandoned at the
	// aggregator's per-leaf deadline — the trace shows exactly which leaf's
	// data is missing from a partial result.
	Answered bool `json:"answered"`
	// RTTNanos is the aggregator-observed round trip (dial + RPC + decode);
	// RTT minus the leaf's own LatencyNanos is time lost to the network and
	// retries. Abandoned leaves record the elapsed time at abandonment.
	RTTNanos int64 `json:"rtt_nanos"`
	// Err is the transport or leaf error for unanswered spans.
	Err string `json:"err,omitempty"`
	// Shards lists the shards this leaf was asked to serve (nil on
	// unsharded deployments); an unanswered span's Shards are exactly the
	// shards whose data is missing from the partial result.
	Shards []int `json:"shards,omitempty"`
	// Exec is the leaf's execution report (nil when the leaf predates the
	// trace protocol, errored, or was abandoned).
	Exec *ExecStats `json:"exec,omitempty"`
}

// Trace is one query's assembled cross-leaf trace.
type Trace struct {
	TraceID uint64 `json:"trace_id"`
	// Query is the query's rendered form (SELECT ... FROM ...).
	Query string `json:"query"`
	// Table is the queried table. The self-telemetry sink keys its
	// recursion suppression on it: traces of __system.* queries are never
	// fed back into __system.traces. Additive — older traces decode with
	// it empty.
	Table string    `json:"table,omitempty"`
	Start time.Time `json:"start"`
	// DurationNanos is end-to-end aggregator time: fan-out, merge, finalize.
	DurationNanos  int64 `json:"duration_nanos"`
	LeavesTotal    int   `json:"leaves_total"`
	LeavesAnswered int   `json:"leaves_answered"`
	// Per-shard coverage, mirroring the merged Result's ShardsTotal and
	// ShardsAnswered exactly (zero when the aggregator routes unsharded) —
	// the regression tests pin that /debug/traces and the dashboard
	// counters can never disagree.
	ShardsTotal    int        `json:"shards_total,omitempty"`
	ShardsAnswered int        `json:"shards_answered,omitempty"`
	Slow           bool       `json:"slow"`
	Spans          []LeafSpan `json:"spans"`
}

// SlowestSpan returns the answered span with the largest RTT (nil when none
// answered).
func (t *Trace) SlowestSpan() *LeafSpan {
	var slow *LeafSpan
	for i := range t.Spans {
		sp := &t.Spans[i]
		if !sp.Answered {
			continue
		}
		if slow == nil || sp.RTTNanos > slow.RTTNanos {
			slow = sp
		}
	}
	return slow
}

// TracerOptions configure the trace rings.
type TracerOptions struct {
	// Capacity bounds the recent-trace ring (default 64).
	Capacity int
	// SlowCapacity bounds the slow-query ring (default 32).
	SlowCapacity int
	// SlowThreshold marks queries at or above this duration as slow. Zero
	// selects adaptive tail sampling: once MinSamples latencies have been
	// observed, anything at or above the running p99 is kept — "the slowest
	// ~1% of whatever the workload currently is" without hand-tuning.
	SlowThreshold time.Duration
	// MinSamples is how many latencies adaptive sampling needs before it
	// starts flagging (default 32; ignored with a fixed threshold).
	MinSamples int64
	// Metrics, when non-nil, receives trace.count and trace.slow counters.
	Metrics *metrics.Registry
	// OnRecord, when non-nil, observes every recorded trace after slow
	// classification and span dedupe, outside the tracer's lock. The
	// self-telemetry sink hooks here to turn completed traces into
	// __system.traces rows.
	OnRecord func(Trace)
}

// idRand feeds the trace/span ID generators. math/rand suffices: IDs only
// need to be unique within one aggregator's retained rings, not secret.
var idRand = struct {
	sync.Mutex
	*rand.Rand
}{Rand: rand.New(rand.NewSource(time.Now().UnixNano()))}

// RandomID returns a fresh nonzero 64-bit ID for traces and spans.
func RandomID() uint64 {
	idRand.Lock()
	defer idRand.Unlock()
	for {
		if id := idRand.Uint64(); id != 0 {
			return id
		}
	}
}

// Tracer assembles and retains traces on behalf of one aggregator. All
// methods are safe for concurrent use; a nil *Tracer is a valid no-op for
// the ID generators, so callers can stamp unconditionally.
type Tracer struct {
	opts TracerOptions

	mu     sync.Mutex
	recent []Trace // ring, oldest first once full
	slow   []Trace
	lat    *metrics.Histogram // latency distribution for adaptive sampling

	traceCount *metrics.Counter
	slowCount  *metrics.Counter
}

// NewTracer creates a tracer. The zero options give a 64-trace ring, a
// 32-trace slow log, and adaptive (p99) slow sampling.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = 64
	}
	if opts.SlowCapacity <= 0 {
		opts.SlowCapacity = 32
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 32
	}
	t := &Tracer{
		opts: opts,
		lat:  &metrics.Histogram{},
	}
	if reg := opts.Metrics; reg != nil {
		t.traceCount = reg.Counter("trace.count")
		t.slowCount = reg.Counter("trace.slow")
	}
	return t
}

// SlowThreshold reports the configured fixed threshold (0 = adaptive).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.opts.SlowThreshold
}

// NewTraceID returns a fresh nonzero trace ID — 0 on a nil tracer, which
// callers read as "this query is untraced".
func (t *Tracer) NewTraceID() uint64 {
	if t == nil {
		return 0
	}
	return RandomID()
}

// Record files a completed trace: spans are deduplicated by span ID (a
// retried RPC must not produce duplicate leaf spans — the attempt that
// answered wins), the trace is classified slow or not, and it is inserted
// into the bounded rings. It reports whether the trace was kept as slow.
func (t *Tracer) Record(tr Trace) bool {
	if t == nil {
		return false
	}
	tr.Spans = dedupeSpans(tr.Spans)
	t.mu.Lock()
	tr.Slow = t.isSlowLocked(time.Duration(tr.DurationNanos))
	t.lat.ObserveDuration(time.Duration(tr.DurationNanos))
	t.recent = appendBounded(t.recent, tr, t.opts.Capacity)
	if tr.Slow {
		t.slow = appendBounded(t.slow, tr, t.opts.SlowCapacity)
		if t.slowCount != nil {
			t.slowCount.Add(1)
		}
	}
	if t.traceCount != nil {
		t.traceCount.Add(1)
	}
	t.mu.Unlock()
	if t.opts.OnRecord != nil {
		t.opts.OnRecord(tr)
	}
	return tr.Slow
}

// isSlowLocked applies the fixed threshold, or the adaptive p99 rule once
// enough samples exist. The current query's latency is judged against the
// distribution *before* it is folded in.
func (t *Tracer) isSlowLocked(d time.Duration) bool {
	if th := t.opts.SlowThreshold; th > 0 {
		return d >= th
	}
	st := t.lat.Stats()
	if st.Count < t.opts.MinSamples {
		return false
	}
	// Strictly above p99: in a tight uniform workload the typical latency
	// IS the p99 estimate, and the slow log should stay empty until a real
	// outlier shows up.
	return d.Microseconds() > st.P99
}

// dedupeSpans keeps one span per span ID, preferring the one that answered
// (and among answered duplicates, the first — the attempt whose response the
// client returned). Spans without IDs (untraced targets) pass through.
func dedupeSpans(spans []LeafSpan) []LeafSpan {
	seen := make(map[uint64]int, len(spans))
	out := spans[:0]
	for _, sp := range spans {
		if sp.SpanID == 0 {
			out = append(out, sp)
			continue
		}
		if j, ok := seen[sp.SpanID]; ok {
			if !out[j].Answered && sp.Answered {
				out[j] = sp
			}
			continue
		}
		seen[sp.SpanID] = len(out)
		out = append(out, sp)
	}
	return out
}

// appendBounded appends to a ring slice, dropping the oldest entry once the
// capacity is reached.
func appendBounded(ring []Trace, tr Trace, capacity int) []Trace {
	ring = append(ring, tr)
	if len(ring) > capacity {
		copy(ring, ring[1:])
		ring = ring[:len(ring)-1]
	}
	return ring
}

// Recent returns the retained traces, newest first.
func (t *Tracer) Recent() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return reversed(t.recent)
}

// Slow returns the slow-query log, newest first.
func (t *Tracer) Slow() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return reversed(t.slow)
}

// Get returns the trace with the given ID from either ring (nil if it has
// rotated out).
func (t *Tracer) Get(id uint64) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ring := range [][]Trace{t.recent, t.slow} {
		for i := range ring {
			if ring[i].TraceID == id {
				tr := ring[i]
				return &tr
			}
		}
	}
	return nil
}

func reversed(ring []Trace) []Trace {
	out := make([]Trace, len(ring))
	for i, tr := range ring {
		out[len(ring)-1-i] = tr
	}
	return out
}
