// Package column encodes and decodes typed column values to and from the RBC
// blob format defined in internal/layout. Each value type gets the pipeline
// the paper describes (§2.1) — at least two compression methods per column:
//
//	int64 / time  delta encoding -> zigzag -> bit packing, then LZ4
//	float64       raw IEEE-754 bits, then LZ4
//	string        dictionary encoding -> bit-packed indexes, then LZ4
//	string set    dictionary encoding -> varint id lists, then LZ4
//
// The LZ4 stage is kept only when it actually shrinks the data section, and
// the compression code in the RBC header records whether it was applied.
package column

import (
	"encoding/binary"
	"fmt"
	"math"

	"scuba/internal/codec"
	"scuba/internal/codec/lz4"
	"scuba/internal/layout"
)

// Column is a decoded, queryable column. Concrete types are Int64Column,
// Float64Column, StringColumn, and StringSetColumn.
type Column interface {
	// Type returns the column's value type.
	Type() layout.ValueType
	// Len returns the number of rows.
	Len() int
}

// maybeLZ4 compresses data and reports whether compression paid off.
func maybeLZ4(data []byte) (out []byte, compressed bool) {
	if len(data) < 64 {
		return data, false // too small to be worth a compressor stage
	}
	comp, err := lz4.Compress(make([]byte, 0, lz4.CompressBound(len(data))), data)
	if err != nil || len(comp) >= len(data) {
		return data, false
	}
	return comp, true
}

// undoLZ4 reverses maybeLZ4 according to the compression code.
func undoLZ4(r *layout.RBC) ([]byte, error) {
	data := r.Data()
	if r.Code().Compressor() != codec.MethodLZ4 {
		return data, nil
	}
	return lz4.Decompress(data, r.UncompressedLen())
}

// finish wraps an encoded data section into an RBC blob, applying LZ4.
func finish(vt layout.ValueType, transform codec.Method, numItems, numDictItems uint64, dict, data []byte) []byte {
	uncompressed := uint64(len(data))
	out, compressed := maybeLZ4(data)
	comp := codec.MethodRaw
	if compressed {
		comp = codec.MethodLZ4
	}
	return layout.Build(vt, codec.NewCode(transform, comp), numItems, numDictItems, dict, out, uncompressed)
}

// EncodeInt64 encodes signed integer values. vt must be TypeInt64 or
// TypeTime; the time column is an int64 column with a dedicated type code.
func EncodeInt64(vt layout.ValueType, values []int64) []byte {
	if vt != layout.TypeInt64 && vt != layout.TypeTime {
		panic(fmt.Sprintf("column: EncodeInt64 with type %v", vt))
	}
	data := codec.EncodeDeltaBPI64(nil, values)
	return finish(vt, codec.MethodDeltaBP, uint64(len(values)), 0, nil, data)
}

// EncodeFloat64 encodes float values as raw bits plus LZ4.
func EncodeFloat64(values []float64) []byte {
	data := make([]byte, 0, len(values)*8)
	for _, v := range values {
		data = binary.LittleEndian.AppendUint64(data, math.Float64bits(v))
	}
	return finish(layout.TypeFloat64, codec.MethodRaw, uint64(len(values)), 0, nil, data)
}

// EncodeString dictionary-encodes string values.
func EncodeString(values []string) []byte {
	d := codec.NewDict()
	ids := make([]uint32, len(values))
	for i, s := range values {
		ids[i] = d.ID(s)
	}
	remap := d.Canonicalize()
	packed := make([]uint64, len(ids))
	for i, id := range ids {
		packed[i] = uint64(remap[id])
	}
	dict := codec.EncodeDict(nil, d.Items())
	data := codec.EncodeBitPackU64(nil, packed)
	return finish(layout.TypeString, codec.MethodDict, uint64(len(values)), uint64(d.Len()), dict, data)
}

// EncodeStringSet encodes per-row string sets: each row's data is a varint
// count followed by varint dictionary IDs.
func EncodeStringSet(values [][]string) []byte {
	d := codec.NewDict()
	rows := make([][]uint32, len(values))
	for i, set := range values {
		ids := make([]uint32, len(set))
		for j, s := range set {
			ids[j] = d.ID(s)
		}
		rows[i] = ids
	}
	remap := d.Canonicalize()
	var data []byte
	for _, ids := range rows {
		data = binary.AppendUvarint(data, uint64(len(ids)))
		for _, id := range ids {
			data = binary.AppendUvarint(data, uint64(remap[id]))
		}
	}
	dict := codec.EncodeDict(nil, d.Items())
	return finish(layout.TypeStringSet, codec.MethodDict, uint64(len(values)), uint64(d.Len()), dict, data)
}

// Int64Column is a decoded integer (or time) column.
type Int64Column struct {
	vt     layout.ValueType
	Values []int64
}

// Type implements Column.
func (c *Int64Column) Type() layout.ValueType { return c.vt }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.Values) }

// Float64Column is a decoded float column.
type Float64Column struct {
	Values []float64
}

// Type implements Column.
func (c *Float64Column) Type() layout.ValueType { return layout.TypeFloat64 }

// Len implements Column.
func (c *Float64Column) Len() int { return len(c.Values) }

// StringColumn is a decoded dictionary string column. Values stay as
// dictionary IDs; Value materializes one string at a time, and predicates can
// be evaluated once against the dictionary instead of per row.
type StringColumn struct {
	Dict []string
	IDs  []uint32
}

// Type implements Column.
func (c *StringColumn) Type() layout.ValueType { return layout.TypeString }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.IDs) }

// Value returns the string at row i.
func (c *StringColumn) Value(i int) string { return c.Dict[c.IDs[i]] }

// StringSetColumn is a decoded string-set column.
type StringSetColumn struct {
	Dict []string
	Rows [][]uint32
}

// Type implements Column.
func (c *StringSetColumn) Type() layout.ValueType { return layout.TypeStringSet }

// Len implements Column.
func (c *StringSetColumn) Len() int { return len(c.Rows) }

// Value returns the set of strings at row i.
func (c *StringSetColumn) Value(i int) []string {
	out := make([]string, len(c.Rows[i]))
	for j, id := range c.Rows[i] {
		out[j] = c.Dict[id]
	}
	return out
}

// Contains reports whether row i's set contains s.
func (c *StringSetColumn) Contains(i int, s string) bool {
	for _, id := range c.Rows[i] {
		if c.Dict[id] == s {
			return true
		}
	}
	return false
}

// Decode parses a validated RBC into a typed Column.
func Decode(r *layout.RBC) (Column, error) {
	switch r.Type() {
	case layout.TypeInt64, layout.TypeTime:
		vals, err := DecodeInt64(r)
		if err != nil {
			return nil, err
		}
		return &Int64Column{vt: r.Type(), Values: vals}, nil
	case layout.TypeFloat64:
		vals, err := DecodeFloat64(r)
		if err != nil {
			return nil, err
		}
		return &Float64Column{Values: vals}, nil
	case layout.TypeString:
		return DecodeString(r)
	case layout.TypeStringSet:
		return DecodeStringSet(r)
	default:
		return nil, fmt.Errorf("column: unknown value type %v", r.Type())
	}
}

// DecodeInt64 decodes an int64 or time column.
func DecodeInt64(r *layout.RBC) ([]int64, error) {
	if r.Type() != layout.TypeInt64 && r.Type() != layout.TypeTime {
		return nil, fmt.Errorf("column: %v is not an integer column", r.Type())
	}
	data, err := undoLZ4(r)
	if err != nil {
		return nil, err
	}
	vals, err := codec.DecodeDeltaBPI64(data)
	if err != nil {
		return nil, err
	}
	if len(vals) != r.NumItems() {
		return nil, fmt.Errorf("column: decoded %d values, header says %d", len(vals), r.NumItems())
	}
	return vals, nil
}

// DecodeFloat64 decodes a float column.
func DecodeFloat64(r *layout.RBC) ([]float64, error) {
	if r.Type() != layout.TypeFloat64 {
		return nil, fmt.Errorf("column: %v is not a float column", r.Type())
	}
	data, err := undoLZ4(r)
	if err != nil {
		return nil, err
	}
	if len(data) != r.NumItems()*8 {
		return nil, fmt.Errorf("column: %d data bytes for %d floats", len(data), r.NumItems())
	}
	vals := make([]float64, r.NumItems())
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return vals, nil
}

// DecodeString decodes a dictionary string column.
func DecodeString(r *layout.RBC) (*StringColumn, error) {
	if r.Type() != layout.TypeString {
		return nil, fmt.Errorf("column: %v is not a string column", r.Type())
	}
	dict, err := codec.DecodeDict(r.Dict())
	if err != nil {
		return nil, err
	}
	if len(dict) != r.NumDictItems() {
		return nil, fmt.Errorf("column: %d dict entries, header says %d", len(dict), r.NumDictItems())
	}
	data, err := undoLZ4(r)
	if err != nil {
		return nil, err
	}
	packed, err := codec.DecodeBitPackU64(data)
	if err != nil {
		return nil, err
	}
	if len(packed) != r.NumItems() {
		return nil, fmt.Errorf("column: decoded %d ids, header says %d", len(packed), r.NumItems())
	}
	ids := make([]uint32, len(packed))
	for i, v := range packed {
		if v >= uint64(len(dict)) && len(dict) > 0 || v > 0 && len(dict) == 0 {
			return nil, fmt.Errorf("column: id %d out of dictionary range %d", v, len(dict))
		}
		ids[i] = uint32(v)
	}
	return &StringColumn{Dict: dict, IDs: ids}, nil
}

// DecodeStringSet decodes a string-set column.
func DecodeStringSet(r *layout.RBC) (*StringSetColumn, error) {
	if r.Type() != layout.TypeStringSet {
		return nil, fmt.Errorf("column: %v is not a string-set column", r.Type())
	}
	dict, err := codec.DecodeDict(r.Dict())
	if err != nil {
		return nil, err
	}
	data, err := undoLZ4(r)
	if err != nil {
		return nil, err
	}
	// Each row costs at least one byte; a corrupt header cannot size the
	// allocation beyond the data it actually shipped.
	if r.NumItems() < 0 || r.NumItems() > len(data) {
		return nil, fmt.Errorf("column: %d set rows in %d bytes", r.NumItems(), len(data))
	}
	rows := make([][]uint32, 0, r.NumItems())
	for len(rows) < r.NumItems() {
		count, used, err := codec.Uvarint(data)
		if err != nil {
			return nil, fmt.Errorf("column: row %d count: %w", len(rows), err)
		}
		data = data[used:]
		if count > uint64(len(data)) { // each id is at least one byte
			return nil, fmt.Errorf("column: row %d claims %d ids in %d bytes", len(rows), count, len(data))
		}
		ids := make([]uint32, 0, count)
		for j := uint64(0); j < count; j++ {
			id, used, err := codec.Uvarint(data)
			if err != nil {
				return nil, fmt.Errorf("column: row %d id %d: %w", len(rows), j, err)
			}
			data = data[used:]
			if id >= uint64(len(dict)) {
				return nil, fmt.Errorf("column: id %d out of dictionary range %d", id, len(dict))
			}
			ids = append(ids, uint32(id))
		}
		rows = append(rows, ids)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("column: %d trailing bytes after %d rows", len(data), len(rows))
	}
	return &StringSetColumn{Dict: dict, Rows: rows}, nil
}
