package column

import (
	"reflect"
	"testing"

	"scuba/internal/layout"
)

func TestNewInt64(t *testing.T) {
	c := NewInt64(layout.TypeTime, []int64{1, 2, 3})
	if c.Type() != layout.TypeTime || c.Len() != 3 {
		t.Errorf("type/len = %v/%d", c.Type(), c.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewInt64 with string type did not panic")
		}
	}()
	NewInt64(layout.TypeString, nil)
}

func TestNewStringFromValues(t *testing.T) {
	c := NewStringFromValues([]string{"b", "a", "b"})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Value(0) != "b" || c.Value(1) != "a" || c.Value(2) != "b" {
		t.Error("values wrong")
	}
	if len(c.Dict) != 2 {
		t.Errorf("dict = %v", c.Dict)
	}
	if c.Type() != layout.TypeString {
		t.Errorf("type = %v", c.Type())
	}
}

func TestNewStringSetFromValues(t *testing.T) {
	c := NewStringSetFromValues([][]string{{"x", "y"}, nil, {"y"}})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !reflect.DeepEqual(c.Value(0), []string{"x", "y"}) {
		t.Errorf("row 0 = %v", c.Value(0))
	}
	if len(c.Value(1)) != 0 {
		t.Errorf("row 1 = %v", c.Value(1))
	}
	if !c.Contains(2, "y") || c.Contains(2, "x") {
		t.Error("Contains wrong")
	}
	if c.Type() != layout.TypeStringSet {
		t.Errorf("type = %v", c.Type())
	}
	// Len methods on the typed columns (interface completeness).
	if (&Float64Column{Values: []float64{1}}).Len() != 1 {
		t.Error("Float64Column.Len wrong")
	}
}
