package column

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scuba/internal/codec"
	"scuba/internal/layout"
)

func mustParse(t *testing.T, blob []byte) *layout.RBC {
	t.Helper()
	r, err := layout.Parse(blob)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return r
}

func TestInt64RoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{1, 2, 3, 4, 5},
		{math.MaxInt64, math.MinInt64, 0, -1, 1},
	}
	for _, vals := range cases {
		blob := EncodeInt64(layout.TypeInt64, vals)
		got, err := DecodeInt64(mustParse(t, blob))
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(got) == 0 && len(vals) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("round trip %v -> %v", vals, got)
		}
	}
}

func TestTimeColumnType(t *testing.T) {
	vals := []int64{1700000000, 1700000001, 1700000002}
	blob := EncodeInt64(layout.TypeTime, vals)
	r := mustParse(t, blob)
	if r.Type() != layout.TypeTime {
		t.Errorf("Type = %v, want TypeTime", r.Type())
	}
	col, err := Decode(r)
	if err != nil {
		t.Fatal(err)
	}
	ic, ok := col.(*Int64Column)
	if !ok {
		t.Fatalf("Decode returned %T", col)
	}
	if ic.Type() != layout.TypeTime {
		t.Errorf("column Type = %v", ic.Type())
	}
	if !reflect.DeepEqual(ic.Values, vals) {
		t.Errorf("values = %v", ic.Values)
	}
}

func TestEncodeInt64RejectsWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EncodeInt64 with TypeString did not panic")
		}
	}()
	EncodeInt64(layout.TypeString, []int64{1})
}

func TestFloat64RoundTrip(t *testing.T) {
	cases := [][]float64{
		nil,
		{0},
		{1.5, -2.25, 3.75},
		{math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
	for _, vals := range cases {
		blob := EncodeFloat64(vals)
		got, err := DecodeFloat64(mustParse(t, blob))
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(got) == 0 && len(vals) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("round trip %v -> %v", vals, got)
		}
	}
}

func TestFloat64NaN(t *testing.T) {
	blob := EncodeFloat64([]float64{math.NaN()})
	got, err := DecodeFloat64(mustParse(t, blob))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[0]) {
		t.Errorf("NaN round trip = %v", got[0])
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{""},
		{"a"},
		{"web", "web", "ads", "web", "search", "ads"},
	}
	for _, vals := range cases {
		blob := EncodeString(vals)
		col, err := DecodeString(mustParse(t, blob))
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if col.Len() != len(vals) {
			t.Fatalf("Len = %d, want %d", col.Len(), len(vals))
		}
		for i, want := range vals {
			if got := col.Value(i); got != want {
				t.Errorf("row %d = %q, want %q", i, got, want)
			}
		}
	}
}

func TestStringDictDeduplication(t *testing.T) {
	vals := make([]string, 10000)
	for i := range vals {
		vals[i] = fmt.Sprintf("service-%d", i%4)
	}
	blob := EncodeString(vals)
	// 10000 strings with 4 distinct values: dictionary ~60 bytes, IDs 2 bits
	// each = 2.5 KB. Anything near raw size means dedup is broken.
	if len(blob) > 4096 {
		t.Errorf("low-cardinality column encoded to %d bytes", len(blob))
	}
	col, err := DecodeString(mustParse(t, blob))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Dict) != 4 {
		t.Errorf("dictionary has %d entries, want 4", len(col.Dict))
	}
}

func TestStringSetRoundTrip(t *testing.T) {
	cases := [][][]string{
		nil,
		{{}},
		{{"a"}},
		{{"x", "y"}, {}, {"y"}, {"x", "y", "z"}},
	}
	for _, vals := range cases {
		blob := EncodeStringSet(vals)
		col, err := DecodeStringSet(mustParse(t, blob))
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if col.Len() != len(vals) {
			t.Fatalf("Len = %d, want %d", col.Len(), len(vals))
		}
		for i, want := range vals {
			got := col.Value(i)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("row %d = %v, want %v", i, got, want)
			}
		}
	}
}

func TestStringSetContains(t *testing.T) {
	blob := EncodeStringSet([][]string{{"tag1", "tag2"}, {"tag3"}})
	col, err := DecodeStringSet(mustParse(t, blob))
	if err != nil {
		t.Fatal(err)
	}
	if !col.Contains(0, "tag1") || !col.Contains(0, "tag2") || col.Contains(0, "tag3") {
		t.Error("Contains wrong for row 0")
	}
	if !col.Contains(1, "tag3") || col.Contains(1, "tag1") {
		t.Error("Contains wrong for row 1")
	}
}

func TestDecodeGeneric(t *testing.T) {
	blobs := map[layout.ValueType][]byte{
		layout.TypeInt64:     EncodeInt64(layout.TypeInt64, []int64{1, 2}),
		layout.TypeFloat64:   EncodeFloat64([]float64{1.5}),
		layout.TypeString:    EncodeString([]string{"a", "b"}),
		layout.TypeStringSet: EncodeStringSet([][]string{{"a"}}),
	}
	for vt, blob := range blobs {
		col, err := Decode(mustParse(t, blob))
		if err != nil {
			t.Fatalf("%v: %v", vt, err)
		}
		if col.Type() != vt {
			t.Errorf("Decode(%v).Type() = %v", vt, col.Type())
		}
	}
}

func TestDecodeTypeMismatch(t *testing.T) {
	intBlob := mustParse(t, EncodeInt64(layout.TypeInt64, []int64{1}))
	strBlob := mustParse(t, EncodeString([]string{"a"}))
	if _, err := DecodeString(intBlob); err == nil {
		t.Error("DecodeString on int column succeeded")
	}
	if _, err := DecodeInt64(strBlob); err == nil {
		t.Error("DecodeInt64 on string column succeeded")
	}
	if _, err := DecodeFloat64(intBlob); err == nil {
		t.Error("DecodeFloat64 on int column succeeded")
	}
	if _, err := DecodeStringSet(strBlob); err == nil {
		t.Error("DecodeStringSet on string column succeeded")
	}
}

func TestLZ4AppliedWhenUseful(t *testing.T) {
	// Highly repetitive float data: LZ4 stage should engage.
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = 42.0
	}
	blob := EncodeFloat64(vals)
	r := mustParse(t, blob)
	if r.Code().Compressor() != codec.MethodLZ4 {
		t.Errorf("compressor = %v, want lz4", r.Code().Compressor())
	}
	if len(blob) > 2048 {
		t.Errorf("constant float column encoded to %d bytes", len(blob))
	}
	// Random float data: LZ4 stage should be skipped.
	rng := rand.New(rand.NewSource(3))
	rvals := make([]float64, 8192)
	for i := range rvals {
		rvals[i] = rng.NormFloat64()
	}
	rblob := EncodeFloat64(rvals)
	rr := mustParse(t, rblob)
	if rr.Code().Compressor() == codec.MethodLZ4 {
		t.Error("lz4 applied to incompressible floats")
	}
}

func TestAtLeastTwoMethodsPerColumn(t *testing.T) {
	// The paper: "at least two methods applied to each column" (§2.1).
	// Verify the compression codes on representative columns.
	times := make([]int64, 65536)
	for i := range times {
		times[i] = 1700000000 + int64(i/3)
	}
	blob := EncodeInt64(layout.TypeTime, times)
	r := mustParse(t, blob)
	if r.Code().Transform() != codec.MethodDeltaBP {
		t.Errorf("time transform = %v", r.Code().Transform())
	}
	if r.Code().Compressor() != codec.MethodLZ4 {
		t.Errorf("time compressor = %v, want lz4 on top of delta+bitpack", r.Code().Compressor())
	}

	strs := make([]string, 65536)
	for i := range strs {
		strs[i] = fmt.Sprintf("host-%d", i%100)
	}
	sblob := EncodeString(strs)
	sr := mustParse(t, sblob)
	if sr.Code().Transform() != codec.MethodDict {
		t.Errorf("string transform = %v", sr.Code().Transform())
	}
}

func TestInt64Property(t *testing.T) {
	f := func(vals []int64) bool {
		blob := EncodeInt64(layout.TypeInt64, vals)
		r, err := layout.Parse(blob)
		if err != nil {
			return false
		}
		got, err := DecodeInt64(r)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringProperty(t *testing.T) {
	f := func(vals []string) bool {
		blob := EncodeString(vals)
		r, err := layout.Parse(blob)
		if err != nil {
			return false
		}
		col, err := DecodeString(r)
		if err != nil || col.Len() != len(vals) {
			return false
		}
		for i, want := range vals {
			if col.Value(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Property(t *testing.T) {
	f := func(vals []float64) bool {
		blob := EncodeFloat64(vals)
		r, err := layout.Parse(blob)
		if err != nil {
			return false
		}
		got, err := DecodeFloat64(r)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionRatioLogTable(t *testing.T) {
	// A service-log-shaped column mix should compress well end to end;
	// the paper reports ~30x on production data (E7 quantifies this).
	n := 65536
	times := make([]int64, n)
	hosts := make([]string, n)
	for i := 0; i < n; i++ {
		times[i] = 1700000000 + int64(i/100)
		hosts[i] = fmt.Sprintf("host-%03d.prn1", i%200)
	}
	rawSize := n*8 + n*len(hosts[0])
	encSize := len(EncodeInt64(layout.TypeTime, times)) + len(EncodeString(hosts))
	ratio := float64(rawSize) / float64(encSize)
	if ratio < 10 {
		t.Errorf("compression ratio %.1fx, want >=10x on log-like data", ratio)
	}
}
