package column

import (
	"fmt"

	"scuba/internal/codec"
	"scuba/internal/layout"
)

// NewInt64 builds a decoded integer column directly from values (used by
// unsealed-row snapshots, which never pass through the encoded form).
func NewInt64(vt layout.ValueType, values []int64) *Int64Column {
	if vt != layout.TypeInt64 && vt != layout.TypeTime {
		panic(fmt.Sprintf("column: NewInt64 with type %v", vt))
	}
	return &Int64Column{vt: vt, Values: values}
}

// NewStringFromValues builds a decoded string column from raw values.
func NewStringFromValues(values []string) *StringColumn {
	d := codec.NewDict()
	ids := make([]uint32, len(values))
	for i, s := range values {
		ids[i] = d.ID(s)
	}
	return &StringColumn{Dict: d.Items(), IDs: ids}
}

// NewStringSetFromValues builds a decoded string-set column from raw values.
func NewStringSetFromValues(values [][]string) *StringSetColumn {
	d := codec.NewDict()
	rows := make([][]uint32, len(values))
	for i, set := range values {
		ids := make([]uint32, len(set))
		for j, s := range set {
			ids[j] = d.ID(s)
		}
		rows[i] = ids
	}
	return &StringSetColumn{Dict: d.Items(), Rows: rows}
}
