// Package layout defines the binary layout of a row block column (RBC), the
// unit of storage and of restart-time copying in Scuba (Figure 3).
//
// An RBC is a single contiguous blob. The header starts at the blob's base
// address and every other location — dictionary, data, footer — is an offset
// from that base. Because the blob contains no absolute pointers it can be
// relocated between heap and shared memory with one copy; only the pointer to
// the blob (held by the enclosing row block) changes (§2.1, §4.4). BerkeleyDB
// uses the same base-plus-offset technique for its pointers.
//
// Blob layout, little-endian:
//
//	offset  size  field
//	0       4     magic "RBC1"
//	4       2     layout version
//	6       1     compression code (codec.Code: transform | compressor<<4)
//	7       1     value type
//	8       8     number of bytes used by the column (= len(blob))
//	16      8     number of items in the column
//	24      8     number of items in the dictionary
//	32      8     offset at which dictionary is found
//	40      8     offset at which data is found
//	48      8     offset at which footer is found
//	56      ...   dictionary section (may be empty)
//	...     ...   data section
//	footer  8     uncompressed length of the data section
//	+8      4     CRC-32C checksum of blob[0 : footerOffset+8]
package layout

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"scuba/internal/codec"
)

// Magic identifies an RBC blob ("RBC1" little-endian).
const Magic uint32 = 0x31434252

// Version is the current RBC layout version. Bump on any layout change; the
// restore path rejects mismatched versions and falls back to disk recovery.
const Version uint16 = 1

// Header field offsets and sizes.
const (
	HeaderSize = 56
	FooterSize = 12 // uncompressed length (8) + checksum (4)

	offMagic        = 0
	offVersion      = 4
	offCompression  = 6
	offValueType    = 7
	offTotalBytes   = 8
	offNumItems     = 16
	offNumDictItems = 24
	offDictOffset   = 32
	offDataOffset   = 40
	offFooterOffset = 48
)

// ValueType identifies the logical type of a column's values.
type ValueType uint8

// Column value types supported by the engine. TypeTime is the required
// per-row unix timestamp column; it is an int64 with a dedicated type code so
// readers can find it without consulting the schema by name.
const (
	TypeInvalid ValueType = iota
	TypeInt64
	TypeFloat64
	TypeString
	TypeStringSet
	TypeTime
)

func (t ValueType) String() string {
	switch t {
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeString:
		return "string"
	case TypeStringSet:
		return "stringset"
	case TypeTime:
		return "time"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// castagnoli is the CRC-32C table used for all RBC checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned when parsing RBC blobs.
var (
	ErrTooShort = errors.New("layout: blob shorter than header")
	ErrMagic    = errors.New("layout: bad magic")
	ErrVersion  = errors.New("layout: layout version mismatch")
	ErrBounds   = errors.New("layout: section offsets out of bounds")
	ErrChecksum = errors.New("layout: checksum mismatch")
	ErrSize     = errors.New("layout: recorded size differs from blob size")
)

// Build assembles an RBC blob from its encoded sections. dict may be nil for
// columns without a dictionary. uncompressedLen records the size of the data
// section before the byte-level compressor ran (equal to len(data) when no
// compressor was applied); decoders need it to size the LZ4 output buffer.
func Build(vt ValueType, code codec.Code, numItems, numDictItems uint64, dict, data []byte, uncompressedLen uint64) []byte {
	dictOffset := uint64(HeaderSize)
	dataOffset := dictOffset + uint64(len(dict))
	footerOffset := dataOffset + uint64(len(data))
	total := footerOffset + FooterSize

	blob := make([]byte, total)
	binary.LittleEndian.PutUint32(blob[offMagic:], Magic)
	binary.LittleEndian.PutUint16(blob[offVersion:], Version)
	blob[offCompression] = byte(code)
	blob[offValueType] = byte(vt)
	binary.LittleEndian.PutUint64(blob[offTotalBytes:], total)
	binary.LittleEndian.PutUint64(blob[offNumItems:], numItems)
	binary.LittleEndian.PutUint64(blob[offNumDictItems:], numDictItems)
	binary.LittleEndian.PutUint64(blob[offDictOffset:], dictOffset)
	binary.LittleEndian.PutUint64(blob[offDataOffset:], dataOffset)
	binary.LittleEndian.PutUint64(blob[offFooterOffset:], footerOffset)
	copy(blob[dictOffset:], dict)
	copy(blob[dataOffset:], data)
	binary.LittleEndian.PutUint64(blob[footerOffset:], uncompressedLen)
	sum := crc32.Checksum(blob[:footerOffset+8], castagnoli)
	binary.LittleEndian.PutUint32(blob[footerOffset+8:], sum)
	return blob
}

// RBC is a validated read-only view over an RBC blob. It holds the blob and
// pre-parsed offsets; accessors return subslices, never copies.
type RBC struct {
	blob         []byte
	code         codec.Code
	vt           ValueType
	numItems     uint64
	numDictItems uint64
	dictOffset   uint64
	dataOffset   uint64
	footerOffset uint64
}

// Parse validates a blob (magic, version, bounds, checksum) and returns a
// view. The blob is retained, not copied.
func Parse(blob []byte) (*RBC, error) {
	r, err := parseHeader(blob)
	if err != nil {
		return nil, err
	}
	want := binary.LittleEndian.Uint32(blob[r.footerOffset+8:])
	got := crc32.Checksum(blob[:r.footerOffset+8], castagnoli)
	if want != got {
		return nil, fmt.Errorf("%w: stored %08x computed %08x", ErrChecksum, want, got)
	}
	return r, nil
}

// ParseTrusted validates structure but skips the checksum. The heap->shm
// copy path uses it for blobs the process just built itself; every load from
// shared memory or disk must use Parse.
func ParseTrusted(blob []byte) (*RBC, error) {
	return parseHeader(blob)
}

func parseHeader(blob []byte) (*RBC, error) {
	if len(blob) < HeaderSize+FooterSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooShort, len(blob))
	}
	if m := binary.LittleEndian.Uint32(blob[offMagic:]); m != Magic {
		return nil, fmt.Errorf("%w: %08x", ErrMagic, m)
	}
	if v := binary.LittleEndian.Uint16(blob[offVersion:]); v != Version {
		return nil, fmt.Errorf("%w: blob version %d, code version %d", ErrVersion, v, Version)
	}
	r := &RBC{
		blob:         blob,
		code:         codec.Code(blob[offCompression]),
		vt:           ValueType(blob[offValueType]),
		numItems:     binary.LittleEndian.Uint64(blob[offNumItems:]),
		numDictItems: binary.LittleEndian.Uint64(blob[offNumDictItems:]),
		dictOffset:   binary.LittleEndian.Uint64(blob[offDictOffset:]),
		dataOffset:   binary.LittleEndian.Uint64(blob[offDataOffset:]),
		footerOffset: binary.LittleEndian.Uint64(blob[offFooterOffset:]),
	}
	if total := binary.LittleEndian.Uint64(blob[offTotalBytes:]); total != uint64(len(blob)) {
		return nil, fmt.Errorf("%w: header says %d, blob is %d", ErrSize, total, len(blob))
	}
	if r.dictOffset != HeaderSize ||
		r.dataOffset < r.dictOffset ||
		r.footerOffset < r.dataOffset ||
		r.footerOffset+FooterSize != uint64(len(blob)) {
		return nil, fmt.Errorf("%w: dict=%d data=%d footer=%d len=%d",
			ErrBounds, r.dictOffset, r.dataOffset, r.footerOffset, len(blob))
	}
	return r, nil
}

// Blob returns the underlying bytes (for copying to shm or disk).
func (r *RBC) Blob() []byte { return r.blob }

// Size returns the total blob size in bytes.
func (r *RBC) Size() int { return len(r.blob) }

// Code returns the compression pipeline applied to the data section.
func (r *RBC) Code() codec.Code { return r.code }

// Type returns the column's value type.
func (r *RBC) Type() ValueType { return r.vt }

// NumItems returns the number of values in the column.
func (r *RBC) NumItems() int { return int(r.numItems) }

// NumDictItems returns the number of dictionary entries.
func (r *RBC) NumDictItems() int { return int(r.numDictItems) }

// Dict returns the dictionary section (empty for non-dictionary columns).
func (r *RBC) Dict() []byte { return r.blob[r.dictOffset:r.dataOffset] }

// Data returns the (possibly byte-compressed) data section.
func (r *RBC) Data() []byte { return r.blob[r.dataOffset:r.footerOffset] }

// UncompressedLen returns the data section's size before byte compression.
func (r *RBC) UncompressedLen() int {
	return int(binary.LittleEndian.Uint64(r.blob[r.footerOffset:]))
}

// Checksum returns the stored CRC-32C.
func (r *RBC) Checksum() uint32 {
	return binary.LittleEndian.Uint32(r.blob[r.footerOffset+8:])
}
