package layout

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"scuba/internal/codec"
)

func buildSample(t *testing.T) []byte {
	t.Helper()
	dict := codec.EncodeDict(nil, []string{"a", "bb", "ccc"})
	data := codec.EncodeBitPackU64(nil, []uint64{0, 1, 2, 2, 1, 0})
	return Build(TypeString, codec.NewCode(codec.MethodDict, codec.MethodRaw), 6, 3, dict, data, uint64(len(data)))
}

func TestBuildParseRoundTrip(t *testing.T) {
	dict := codec.EncodeDict(nil, []string{"x", "y"})
	data := codec.EncodeBitPackU64(nil, []uint64{0, 1, 1, 0})
	blob := Build(TypeString, codec.NewCode(codec.MethodDict, codec.MethodRaw), 4, 2, dict, data, uint64(len(data)))

	r, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Type() != TypeString {
		t.Errorf("Type = %v", r.Type())
	}
	if r.NumItems() != 4 || r.NumDictItems() != 2 {
		t.Errorf("counts = %d/%d", r.NumItems(), r.NumDictItems())
	}
	if !bytes.Equal(r.Dict(), dict) {
		t.Error("dict section mismatch")
	}
	if !bytes.Equal(r.Data(), data) {
		t.Error("data section mismatch")
	}
	if r.UncompressedLen() != len(data) {
		t.Errorf("UncompressedLen = %d, want %d", r.UncompressedLen(), len(data))
	}
	if r.Size() != len(blob) {
		t.Errorf("Size = %d, want %d", r.Size(), len(blob))
	}
	if r.Code().Transform() != codec.MethodDict {
		t.Errorf("Code transform = %v", r.Code().Transform())
	}
}

func TestParseEmptySections(t *testing.T) {
	blob := Build(TypeInt64, codec.NewCode(codec.MethodRaw, codec.MethodRaw), 0, 0, nil, nil, 0)
	r, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Dict()) != 0 || len(r.Data()) != 0 {
		t.Error("expected empty sections")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	blob := buildSample(t)

	short := blob[:HeaderSize-1]
	if _, err := Parse(short); !errors.Is(err, ErrTooShort) {
		t.Errorf("short blob: %v", err)
	}

	badMagic := append([]byte(nil), blob...)
	badMagic[0] ^= 0xff
	if _, err := Parse(badMagic); !errors.Is(err, ErrMagic) {
		t.Errorf("bad magic: %v", err)
	}

	badVersion := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint16(badVersion[offVersion:], Version+1)
	if _, err := Parse(badVersion); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}

	badSize := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(badSize[offTotalBytes:], uint64(len(blob))+1)
	if _, err := Parse(badSize); !errors.Is(err, ErrSize) {
		t.Errorf("bad size: %v", err)
	}

	truncated := append([]byte(nil), blob[:len(blob)-4]...)
	binary.LittleEndian.PutUint64(truncated[offTotalBytes:], uint64(len(truncated)))
	if _, err := Parse(truncated); !errors.Is(err, ErrBounds) {
		t.Errorf("truncated footer: %v", err)
	}
}

func TestParseDetectsBitFlips(t *testing.T) {
	blob := buildSample(t)
	// Flip every byte in the body (not the stored checksum itself, whose
	// flips are caught as a mismatch against the recomputed value anyway).
	for i := 0; i < len(blob); i++ {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x01
		if _, err := Parse(bad); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestParseTrustedSkipsChecksum(t *testing.T) {
	blob := buildSample(t)
	bad := append([]byte(nil), blob...)
	bad[HeaderSize] ^= 0xff // corrupt dict section
	if _, err := ParseTrusted(bad); err != nil {
		t.Errorf("ParseTrusted rejected checksum-only corruption: %v", err)
	}
	if _, err := Parse(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("Parse accepted corrupt body: %v", err)
	}
}

func TestBuildParseProperty(t *testing.T) {
	f := func(dict, data []byte, numItems, numDict uint16) bool {
		blob := Build(TypeInt64, codec.NewCode(codec.MethodDelta, codec.MethodLZ4),
			uint64(numItems), uint64(numDict), dict, data, uint64(len(data)))
		r, err := Parse(blob)
		if err != nil {
			return false
		}
		return bytes.Equal(r.Dict(), dict) &&
			bytes.Equal(r.Data(), data) &&
			r.NumItems() == int(numItems) &&
			r.NumDictItems() == int(numDict)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelocatability(t *testing.T) {
	// The core property of the format (§2.1): a blob copied to a new buffer
	// parses identically — no absolute pointers anywhere.
	blob := buildSample(t)
	moved := make([]byte, len(blob))
	copy(moved, blob)
	a, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(moved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Dict(), b.Dict()) || !bytes.Equal(a.Data(), b.Data()) || a.Checksum() != b.Checksum() {
		t.Error("relocated blob parses differently")
	}
}

func TestValueTypeStrings(t *testing.T) {
	for vt := TypeInt64; vt <= TypeTime; vt++ {
		if vt.String() == "" {
			t.Errorf("type %d has empty name", vt)
		}
	}
	if TypeInvalid.String() != "type(0)" {
		t.Errorf("TypeInvalid.String() = %q", TypeInvalid.String())
	}
}
