package layout

import (
	"testing"

	"scuba/internal/codec"
)

// FuzzParse feeds arbitrary bytes to the RBC parser. Every blob loaded from
// shared memory or disk passes through Parse; it must never panic and must
// only accept blobs whose checksum verifies.
func FuzzParse(f *testing.F) {
	valid := Build(TypeInt64, codec.NewCode(codec.MethodDeltaBP, codec.MethodRaw),
		3, 0, nil, []byte{1, 2, 3, 4, 5}, 5)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, blob []byte) {
		r, err := Parse(blob)
		if err != nil {
			return
		}
		// Accepted blobs must have consistent accessors.
		if r.Size() != len(blob) {
			t.Fatalf("Size %d != len %d", r.Size(), len(blob))
		}
		_ = r.Dict()
		_ = r.Data()
		_ = r.UncompressedLen()
	})
}
