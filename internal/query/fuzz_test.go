package query

import (
	"reflect"
	"testing"

	"scuba/internal/rowblock"
)

// FuzzZoneMapPrune is the zone-map correctness oracle: for a block built
// from fuzz-chosen values and a fuzz-chosen filter, executing with zone maps
// live must agree exactly — rows, groups, error — with a forced full scan of
// the same block. A divergence means a prune rule claimed "no row can match"
// while a row did (or hid an error a scan would have surfaced).
func FuzzZoneMapPrune(f *testing.F) {
	f.Add(int64(0), int64(100), uint8(0), uint8(0), int64(50), 1.5, "svc-1")
	f.Add(int64(-10), int64(10), uint8(1), uint8(2), int64(-100), -0.5, "")
	f.Add(int64(5), int64(5), uint8(2), uint8(4), int64(5), 100.0, "nope")
	f.Add(int64(0), int64(3), uint8(3), uint8(6), int64(0), 0.0, "t0")
	f.Add(int64(7), int64(9), uint8(0), uint8(3), int64(9), 9.0, "svc-0")

	ops := []CompareOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpContains}
	cols := []string{"n", "fl", "s", "set", "absent"}

	f.Fuzz(func(t *testing.T, base, spread int64, colSel, opSel uint8, opInt int64, opFloat float64, opStr string) {
		if spread < 0 {
			spread = -spread
		}
		spread = spread%97 + 1
		rows := make([]rowblock.Row, 32)
		for i := range rows {
			v := base + int64(i)%spread
			rows[i] = rowblock.Row{
				Time: 1000 + int64(i),
				Cols: map[string]rowblock.Value{
					"n":   rowblock.Int64Value(v),
					"fl":  rowblock.Float64Value(float64(v) / 2),
					"s":   rowblock.StringValue("svc-" + string(rune('0'+v%7&0xf))),
					"set": rowblock.SetValue("t" + string(rune('0'+v%5&0xf))),
				},
			}
		}
		b := rowblock.NewBuilder(1)
		for _, r := range rows {
			if err := b.AddRow(r); err != nil {
				t.Skip()
			}
		}
		rb, err := b.Seal()
		if err != nil {
			t.Skip()
		}

		filter := Filter{
			Column: cols[int(colSel)%len(cols)],
			Op:     ops[int(opSel)%len(ops)],
			Int:    opInt,
			Float:  opFloat,
			Str:    opStr,
		}
		q := &Query{
			Table: "f", From: 0, To: 1 << 40,
			Filters:      []Filter{filter},
			GroupBy:      []string{"s"},
			Aggregations: []Aggregation{{Op: AggCount}, {Op: AggSum, Column: "n"}},
		}

		pruned := NewResult()
		prunedErr := ScanBlock(rb, q, pruned)
		scanned := NewResult()
		scannedErr := ScanBlock(noZonesF{rb}, q, scanned)

		if (prunedErr == nil) != (scannedErr == nil) {
			t.Fatalf("error parity broken: pruned=%v scanned=%v (filter %+v)", prunedErr, scannedErr, filter)
		}
		if prunedErr != nil {
			return
		}
		if !reflect.DeepEqual(pruned.Rows(q), scanned.Rows(q)) {
			t.Fatalf("pruned result %+v != scanned result %+v (filter %+v, zone %+v)",
				pruned.Rows(q), scanned.Rows(q), filter, rb.ColumnZone(filter.Column))
		}
		if pruned.BlocksPruned == 1 && scanned.RowsScanned > 0 && len(scanned.Rows(q)) > 0 {
			t.Fatalf("block pruned but the scan found matching rows (filter %+v)", filter)
		}
	})
}

// noZonesF mirrors prune_test's noZones wrapper without depending on
// *testing.T helpers (fuzz workers run it in a separate process).
type noZonesF struct{ Block }
