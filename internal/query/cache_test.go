package query

import (
	"reflect"
	"testing"

	"scuba/internal/metrics"
	"scuba/internal/rowblock"
	"scuba/internal/table"
)

func cacheCounters(reg *metrics.Registry) (hits, misses, evictions int64) {
	return reg.Counter("query.decode_cache.hits").Value(),
		reg.Counter("query.decode_cache.misses").Value(),
		reg.Counter("query.decode_cache.evictions").Value()
}

func TestDecodeCacheHitsOnRepeat(t *testing.T) {
	tbl := fixtureTable(t)
	reg := metrics.NewRegistry()
	dc := NewDecodeCache(64<<20, reg)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []Aggregation{{Op: AggAvg, Column: "latency"}},
	}
	cold, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := cacheCounters(reg)
	if hits != 0 {
		t.Errorf("cold run produced %d hits", hits)
	}
	// 3 blocks x 2 columns (service, latency) populated the cache.
	if entries, bytes := dc.Stats(); entries != 6 || bytes <= 0 {
		t.Errorf("entries=%d bytes=%d after cold run", entries, bytes)
	}
	if misses != 6 {
		t.Errorf("cold misses = %d, want 6", misses)
	}

	warm, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses2, _ := cacheCounters(reg)
	if hits != 6 {
		t.Errorf("warm hits = %d, want 6", hits)
	}
	if misses2 != misses {
		t.Errorf("warm run missed (%d -> %d)", misses, misses2)
	}
	if !reflect.DeepEqual(cold.Rows(q), warm.Rows(q)) {
		t.Errorf("cached results diverge from cold results")
	}
}

func TestDecodeCacheEviction(t *testing.T) {
	tbl := fixtureTable(t)
	reg := metrics.NewRegistry()
	// Budget fits roughly one column entry: every insert evicts the last.
	dc := NewDecodeCache(1500, reg)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []Aggregation{{Op: AggAvg, Column: "latency"}},
	}
	if _, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1, Cache: dc}); err != nil {
		t.Fatal(err)
	}
	_, bytes := dc.Stats()
	if bytes > 1500 {
		t.Errorf("cache over budget: %d bytes", bytes)
	}
	if _, _, evictions := cacheCounters(reg); evictions == 0 {
		t.Errorf("no evictions despite tiny budget")
	}
}

func TestDecodeCacheSkipsUnsealed(t *testing.T) {
	tbl := table.New("events", table.Options{})
	rows := fixtureRows(t, 10)
	if err := tbl.AddRows(rows, 1); err != nil {
		t.Fatal(err)
	}
	// No SealActive: all data lives in the unsealed tail.
	dc := NewDecodeCache(64<<20, nil)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		GroupBy: []string{"service"}, Aggregations: []Aggregation{{Op: AggCount}}}
	if _, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1, Cache: dc}); err != nil {
		t.Fatal(err)
	}
	if entries, _ := dc.Stats(); entries != 0 {
		t.Errorf("unsealed view cached (%d entries)", entries)
	}
}

func TestDecodeCacheInvalidateOnExpire(t *testing.T) {
	tbl := table.New("events", table.Options{MaxAgeSeconds: 100})
	tbl.SetEvictHook(nil) // replaced below; exercises the setter
	dc := NewDecodeCache(64<<20, nil)
	tbl.SetEvictHook(dc.InvalidateBlocks)
	for b := 0; b < 3; b++ {
		rows := fixtureRows(t, 50)
		for i := range rows {
			rows[i].Time = int64(1000*b + i)
		}
		if err := tbl.AddRows(rows, 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		GroupBy: []string{"service"}, Aggregations: []Aggregation{{Op: AggCount}}}
	if _, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1, Cache: dc}); err != nil {
		t.Fatal(err)
	}
	before, _ := dc.Stats()
	if before == 0 {
		t.Fatalf("cache empty after query")
	}
	// Expire everything older than now-100: blocks 0 and 1 (max times 49,
	// 1049) go; block 2 (max time 2049 == now-100 exactly) stays.
	dropped, err := tbl.Expire(2149)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
	after, _ := dc.Stats()
	if after >= before {
		t.Errorf("expire did not invalidate cache: %d -> %d entries", before, after)
	}
	// The survivor's entries are still valid and queryable.
	res, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 50 {
		t.Errorf("rows scanned after expire = %d", res.RowsScanned)
	}
}

// fixtureRows builds n rows with a service/latency shape.
func fixtureRows(t *testing.T, n int) []rowblock.Row {
	t.Helper()
	rows := make([]rowblock.Row, n)
	for i := range rows {
		rows[i] = rowblock.Row{
			Time: 1000 + int64(i),
			Cols: map[string]rowblock.Value{
				"service": rowblock.StringValue([]string{"web", "ads"}[i%2]),
				"latency": rowblock.Int64Value(int64(i % 20)),
			},
		}
	}
	return rows
}
