package query

import (
	"testing"

	"scuba/internal/rowblock"
	"scuba/internal/table"
)

func TestCountDistinct(t *testing.T) {
	tbl := fixtureTable(t) // service has 3 distinct values, latency 20
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{
			{Op: AggCountDistinct, Column: "service"},
			{Op: AggCountDistinct, Column: "latency"},
		}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if rows[0].Values[0] != 3 {
		t.Errorf("distinct services = %v", rows[0].Values[0])
	}
	if rows[0].Values[1] != 20 {
		t.Errorf("distinct latencies = %v", rows[0].Values[1])
	}
}

func TestCountDistinctPerGroup(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []Aggregation{{Op: AggCount}, {Op: AggCountDistinct, Column: "latency"}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows(q) {
		// Each service sees a subset of the 20 latency values.
		if r.Values[1] < 1 || r.Values[1] > 20 {
			t.Errorf("group %v distinct = %v", r.Key, r.Values[1])
		}
	}
}

func TestCountDistinctMergeAcrossPartials(t *testing.T) {
	// Two leaves with overlapping value sets: exact distinct must dedup
	// across the merge, not add.
	mk := func(vals []string, start int64) *table.Table {
		tbl := table.New("events", table.Options{})
		rows := make([]rowblock.Row, len(vals))
		for i, v := range vals {
			rows[i] = rowblock.Row{Time: start + int64(i), Cols: map[string]rowblock.Value{
				"host": rowblock.StringValue(v),
			}}
		}
		if err := tbl.AddRows(rows, 1); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	a := mk([]string{"h1", "h2", "h3"}, 0)
	b := mk([]string{"h2", "h3", "h4", "h5"}, 100)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCountDistinct, Column: "host"}}}
	ra, err := ExecuteTable(a, q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ExecuteTable(b, q)
	if err != nil {
		t.Fatal(err)
	}
	merged := NewResult()
	merged.Merge(ra)
	merged.Merge(rb)
	if got := merged.Rows(q)[0].Values[0]; got != 5 {
		t.Errorf("merged distinct = %v, want 5 (h1..h5)", got)
	}
}

func TestCountDistinctSurvivesWire(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCountDistinct, Column: "service"}}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	back := Import(res.Export())
	// Merging the re-imported result with a fresh overlapping partial must
	// still dedup (the set travels, not just the count).
	extra := NewResult()
	g := extra.group([]string{}, q)
	g.Aggs[0].ObserveDistinct("svc-nonexistent")
	g.Aggs[0].ObserveDistinct("web") // overlaps fixture values
	back.Merge(extra)
	got := back.Rows(q)[0].Values[0]
	if got != 4 { // web, ads, search + svc-nonexistent ("web" dedups)
		t.Errorf("distinct after wire+merge = %v, want 4", got)
	}
}

func TestCountDistinctOnMissingColumn(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCountDistinct, Column: "ghost"}}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	// Absent column: one distinct value, the zero value.
	if got := res.Rows(q)[0].Values[0]; got != 1 {
		t.Errorf("distinct = %v", got)
	}
}

func TestCountDistinctOnSetColumnRejected(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCountDistinct, Column: "tags"}}}
	if _, err := ExecuteTable(tbl, q); err == nil {
		t.Error("count_distinct over a set column accepted")
	}
}
