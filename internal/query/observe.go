package query

import (
	"time"

	"scuba/internal/metrics"
	"scuba/internal/table"
)

// ExecuteTableObserved runs ExecuteTable and publishes the per-query
// execution latency to reg: the query.exec.latency timer (count/min/max/
// mean) and the query.exec.latency_hist histogram (p50/p95/p99 on /metrics),
// plus query.exec.count and query.exec.errors counters. The names carry the
// "exec." infix so a daemon sharing one registry between its wire server
// (which times whole RPCs as query.latency) and its leaf never
// double-counts. A nil registry degrades to plain ExecuteTable.
func ExecuteTableObserved(tbl *table.Table, q *Query, reg *metrics.Registry) (*Result, error) {
	return ExecuteTableObservedOpts(tbl, q, reg, ExecOptions{})
}

// ExecuteTableObservedOpts is ExecuteTableObserved with execution options
// (worker pool size, decode cache). It additionally publishes the
// query.blocks_pruned counter — sealed blocks skipped wholesale because a
// zone map excluded a filter.
func ExecuteTableObservedOpts(tbl *table.Table, q *Query, reg *metrics.Registry, opts ExecOptions) (*Result, error) {
	if reg == nil {
		return ExecuteTableOpts(tbl, q, opts)
	}
	start := time.Now()
	res, err := ExecuteTableOpts(tbl, q, opts)
	reg.Counter("query.exec.count").Add(1)
	if err != nil {
		reg.Counter("query.exec.errors").Add(1)
		return nil, err
	}
	d := time.Since(start)
	reg.Timer("query.exec.latency").Observe(d)
	reg.Histogram("query.exec.latency_hist").ObserveDuration(d)
	reg.Counter("query.blocks_pruned").Add(res.BlocksPruned)
	return res, nil
}
