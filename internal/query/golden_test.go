package query

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scuba/internal/rowblock"
)

// readGoldenV1 loads the v1 (pre-zone-map) block image fixture shared with
// the rowblock package.
func readGoldenV1(t *testing.T) []byte {
	t.Helper()
	img, err := os.ReadFile(filepath.Join("..", "rowblock", "testdata", "image-v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// sealGoldenRows rebuilds the fixture's rows with today's sealer (v2 image,
// zone maps present). Must stay in lockstep with the generator that produced
// image-v1.golden: columns are introduced one per row for deterministic
// schema order.
func sealGoldenRows(t *testing.T) *rowblock.RowBlock {
	t.Helper()
	b := rowblock.NewBuilder(1700000000)
	add := func(r rowblock.Row) {
		t.Helper()
		if err := b.AddRow(r); err != nil {
			t.Fatal(err)
		}
	}
	add(rowblock.Row{Time: 1700000001, Cols: map[string]rowblock.Value{
		"status": rowblock.Int64Value(200),
	}})
	add(rowblock.Row{Time: 1700000002, Cols: map[string]rowblock.Value{
		"status": rowblock.Int64Value(500), "latency_ms": rowblock.Float64Value(12.5),
	}})
	add(rowblock.Row{Time: 1700000003, Cols: map[string]rowblock.Value{
		"status": rowblock.Int64Value(404), "latency_ms": rowblock.Float64Value(3.25), "service": rowblock.StringValue("web"),
	}})
	add(rowblock.Row{Time: 1700000004, Cols: map[string]rowblock.Value{
		"status": rowblock.Int64Value(200), "latency_ms": rowblock.Float64Value(7), "service": rowblock.StringValue("api"),
		"tags": rowblock.SetValue("canary", "us-east"),
	}})
	for i := 0; i < 60; i++ {
		svc := "web"
		if i%3 == 0 {
			svc = "api"
		}
		add(rowblock.Row{Time: 1700000005 + int64(i), Cols: map[string]rowblock.Value{
			"status":     rowblock.Int64Value(int64(200 + (i%4)*100)),
			"latency_ms": rowblock.Float64Value(float64(i) * 1.5),
			"service":    rowblock.StringValue(svc),
			"tags":       rowblock.SetValue("t" + fmt.Sprint(i%5)),
		}})
	}
	rb, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return rb
}
