package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := &Histogram{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Add(rng.Float64() * 1000)
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramAccuracy(t *testing.T) {
	// Log-scale buckets: answers are within a factor of 2 of truth.
	h := &Histogram{}
	for i := 1; i <= 10000; i++ {
		h.Add(float64(i))
	}
	for q, truth := range map[float64]float64{0.5: 5000, 0.9: 9000, 0.99: 9900} {
		got := h.Quantile(q)
		if got < truth/2 || got > truth*2 {
			t.Errorf("quantile(%v) = %v, truth %v", q, got, truth)
		}
	}
}

func TestHistogramMergeEquivalence(t *testing.T) {
	// Adding values to one histogram must equal merging two halves.
	whole, a, b := &Histogram{}, &Histogram{}, &Histogram{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := math.Abs(rng.NormFloat64()) * 100
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Total != whole.Total {
		t.Fatalf("totals: %d vs %d", a.Total, whole.Total)
	}
	for i := range whole.Counts {
		if a.Counts[i] != whole.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, a.Counts[i], whole.Counts[i])
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Add(0)
	h.Add(-5)
	h.Add(math.NaN())
	if h.Counts[0] != 3 {
		t.Errorf("bucket 0 = %d", h.Counts[0])
	}
	if h.Quantile(0.5) != 0 {
		t.Error("zeros quantile != 0")
	}
	h.Add(math.MaxFloat64)
	if h.Counts[histBuckets-1] != 1 {
		t.Error("huge value not clamped to last bucket")
	}
	h.Merge(nil) // must not panic
}

func TestBucketOfProperty(t *testing.T) {
	f := func(v float64) bool {
		b := bucketOf(math.Abs(v))
		return b >= 0 && b < histBuckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Bucket boundaries are ordered: bigger values land in >= buckets.
	prevB := 0
	for v := 0.5; v < 1e12; v *= 2 {
		b := bucketOf(v)
		if b < prevB {
			t.Fatalf("bucketOf(%v) = %d < %d", v, b, prevB)
		}
		prevB = b
	}
}

func TestAggStateMergeIdentity(t *testing.T) {
	a := newAggState(AggAvg)
	for i := 1; i <= 10; i++ {
		a.Observe(float64(i))
	}
	empty := newAggState(AggAvg)
	a.Merge(empty)
	if a.Count != 10 || a.Sum != 55 || a.Min != 1 || a.Max != 10 {
		t.Errorf("state = %+v", a)
	}
	// Merging into empty preserves values.
	empty.Merge(a)
	if empty.Value(AggAvg) != 5.5 {
		t.Errorf("avg = %v", empty.Value(AggAvg))
	}
	// Min/Max of empty state finalize to 0, not Inf.
	e2 := newAggState(AggMin)
	if e2.Value(AggMin) != 0 || e2.Value(AggMax) != 0 {
		t.Error("empty min/max not zero")
	}
}

func TestAggStateHistMergeIntoPlain(t *testing.T) {
	// Merging a histogram-bearing state into a plain one must carry it.
	withHist := newAggState(AggP50)
	for i := 1; i <= 100; i++ {
		withHist.Observe(float64(i))
	}
	plain := &AggState{Min: math.Inf(1), Max: math.Inf(-1)}
	plain.Merge(withHist)
	if plain.Hist == nil || plain.Hist.Total != 100 {
		t.Error("histogram not carried through merge")
	}
}
