package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// AggState is the mergeable accumulator behind one aggregation output.
type AggState struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	Hist  *Histogram // allocated only for percentile ops
	// Distinct holds the exact value set for count-distinct. Exact sets
	// merge losslessly across leaves; memory is bounded by the true
	// cardinality, which for Scuba-style dimensions (hosts, services,
	// products) is small.
	Distinct map[string]bool
}

// newAggState returns an empty accumulator for the op.
func newAggState(op AggOp) *AggState {
	st := &AggState{Min: math.Inf(1), Max: math.Inf(-1)}
	if op == AggP50 || op == AggP90 || op == AggP99 {
		st.Hist = &Histogram{}
	}
	if op == AggCountDistinct {
		st.Distinct = make(map[string]bool)
	}
	return st
}

// Observe folds one value in.
func (s *AggState) Observe(v float64) {
	s.Count++
	s.Sum += v
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
	if s.Hist != nil {
		s.Hist.Add(v)
	}
}

// ObserveDistinct folds one value into the distinct set.
func (s *AggState) ObserveDistinct(v string) {
	s.Count++
	if s.Distinct == nil {
		s.Distinct = make(map[string]bool)
	}
	s.Distinct[v] = true
}

// Merge folds another accumulator in.
func (s *AggState) Merge(o *AggState) {
	if o == nil {
		return
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if s.Hist != nil {
		s.Hist.Merge(o.Hist)
	} else if o.Hist != nil {
		h := &Histogram{}
		h.Merge(o.Hist)
		s.Hist = h
	}
	if len(o.Distinct) > 0 {
		if s.Distinct == nil {
			s.Distinct = make(map[string]bool, len(o.Distinct))
		}
		for v := range o.Distinct {
			s.Distinct[v] = true
		}
	}
}

// Value finalizes the accumulator for the op.
func (s *AggState) Value(op AggOp) float64 {
	switch op {
	case AggCount:
		return float64(s.Count)
	case AggSum:
		return s.Sum
	case AggMin:
		if s.Count == 0 {
			return 0
		}
		return s.Min
	case AggMax:
		if s.Count == 0 {
			return 0
		}
		return s.Max
	case AggAvg:
		if s.Count == 0 {
			return 0
		}
		return s.Sum / float64(s.Count)
	case AggP50:
		return s.Hist.Quantile(0.50)
	case AggP90:
		return s.Hist.Quantile(0.90)
	case AggP99:
		return s.Hist.Quantile(0.99)
	case AggCountDistinct:
		return float64(len(s.Distinct))
	default:
		return 0
	}
}

// Group is one group-by bucket with its accumulators (parallel to the
// query's Aggregations).
type Group struct {
	Key  []string
	Aggs []*AggState
}

const keySep = "\x00"

func keyString(key []string) string { return strings.Join(key, keySep) }

// PhaseTimes breaks one execution down by phase, in cumulative nanoseconds.
// Parallel scan workers each contribute their own time, so on a multi-core
// scan the phases sum to CPU time, not wall time. Merging results sums the
// phases — a merged aggregate answers "where did the work go" across every
// block (and, after the aggregator's merge, every leaf) that contributed.
type PhaseTimes struct {
	// DecodeNanos is time spent materializing columns: decode-cache lookups
	// plus LZ4/dictionary decode on misses.
	DecodeNanos int64
	// PruneNanos is time spent testing zone maps (both outcomes: blocks
	// pruned and blocks that had to be scanned anyway).
	PruneNanos int64
	// ScanNanos is time spent in per-row work: time masks, filters, group
	// keys, and aggregation folds (decode time excluded).
	ScanNanos int64
	// MergeNanos is time spent merging scan-worker partial results.
	MergeNanos int64
}

// Add folds another breakdown in.
func (p *PhaseTimes) Add(o PhaseTimes) {
	p.DecodeNanos += o.DecodeNanos
	p.PruneNanos += o.PruneNanos
	p.ScanNanos += o.ScanNanos
	p.MergeNanos += o.MergeNanos
}

// Result is a (possibly partial) query result. Merging partial results from
// many leaves is associative and commutative.
type Result struct {
	groups map[string]*Group
	// Coverage and work accounting.
	RowsScanned   int64
	BlocksScanned int64
	BlocksSkipped int64
	// BlocksPruned counts sealed blocks skipped because a zone map proved no
	// row could match a filter — cheaper than BlocksSkipped's time-header
	// prune only in that it is per-column, not just per-time-range.
	BlocksPruned   int64
	LeavesTotal    int // filled by the aggregator
	LeavesAnswered int
	// ShardsTotal/ShardsAnswered are per-shard coverage, filled by a
	// shard-routing aggregator (zero on unsharded deployments): how many of
	// the table's shards exist and how many were served by a live owner.
	// With replication, shard coverage stays at 1.0 while a leaf restarts
	// even though leaf coverage dips — the number dashboards should show.
	ShardsTotal    int
	ShardsAnswered int
	// Phases is the per-phase execution time breakdown, kept per leaf by the
	// tracing path (ExecStats) and summed across leaves on merge.
	Phases PhaseTimes
	// CacheHits/CacheMisses count this execution's decode-cache outcomes —
	// the per-query view of the query.decode_cache.{hits,misses} counters.
	CacheHits   int64
	CacheMisses int64
}

// NewResult returns an empty result.
func NewResult() *Result {
	return &Result{groups: make(map[string]*Group)}
}

// group returns (creating if needed) the accumulator row for a key.
func (r *Result) group(key []string, q *Query) *Group {
	ks := keyString(key)
	g, ok := r.groups[ks]
	if !ok {
		g = &Group{Key: append([]string(nil), key...), Aggs: make([]*AggState, len(q.Aggregations))}
		for i, a := range q.Aggregations {
			g.Aggs[i] = newAggState(a.Op)
		}
		r.groups[ks] = g
	}
	return g
}

// NumGroups returns the number of groups.
func (r *Result) NumGroups() int { return len(r.groups) }

// Merge folds a partial result into r. Both must come from the same query.
func (r *Result) Merge(o *Result) {
	if o == nil {
		return
	}
	for ks, og := range o.groups {
		g, ok := r.groups[ks]
		if !ok {
			r.groups[ks] = og
			continue
		}
		for i := range g.Aggs {
			if i < len(og.Aggs) {
				g.Aggs[i].Merge(og.Aggs[i])
			}
		}
	}
	r.RowsScanned += o.RowsScanned
	r.BlocksScanned += o.BlocksScanned
	r.BlocksSkipped += o.BlocksSkipped
	r.BlocksPruned += o.BlocksPruned
	r.LeavesTotal += o.LeavesTotal
	r.LeavesAnswered += o.LeavesAnswered
	r.ShardsTotal += o.ShardsTotal
	r.ShardsAnswered += o.ShardsAnswered
	r.Phases.Add(o.Phases)
	r.CacheHits += o.CacheHits
	r.CacheMisses += o.CacheMisses
}

// Coverage returns the fraction of leaves that answered (1.0 when the
// aggregator did not fill leaf counts). Users see gradually increasing
// partial results while servers recover (§4.1).
func (r *Result) Coverage() float64 {
	if r.LeavesTotal == 0 {
		return 1
	}
	return float64(r.LeavesAnswered) / float64(r.LeavesTotal)
}

// ShardCoverage returns the fraction of shards served (1.0 when the
// aggregator did not route by shard). This is the availability number the
// rollover dashboard tracks: with R-way replication it holds at 1.0 through
// a restart batch, and its floor is 1 - BatchFraction when no replica of a
// drained shard is live.
func (r *Result) ShardCoverage() float64 {
	if r.ShardsTotal == 0 {
		return 1
	}
	return float64(r.ShardsAnswered) / float64(r.ShardsTotal)
}

// WireResult is the serializable form of a Result, used by the wire
// protocol between aggregators and leaves. AggState accumulators travel
// whole so the aggregator can merge partial results exactly.
type WireResult struct {
	Groups         []WireGroup
	RowsScanned    int64
	BlocksScanned  int64
	BlocksSkipped  int64
	BlocksPruned   int64
	LeavesTotal    int
	LeavesAnswered int
	// Shard coverage (v2-additive like the trace fields below; zero on
	// unsharded deployments and pre-shard peers).
	ShardsTotal    int
	ShardsAnswered int
	// Phase timings and cache counters travel with the result so the
	// aggregator can build a per-leaf trace span without a second RPC. Gob
	// omits zero values, so pre-trace peers interoperate transparently.
	Phases      PhaseTimes
	CacheHits   int64
	CacheMisses int64
}

// WireGroup is one serialized group.
type WireGroup struct {
	Key  []string
	Aggs []*AggState
}

// Export converts a Result for the wire.
func (r *Result) Export() *WireResult {
	w := &WireResult{
		RowsScanned:    r.RowsScanned,
		BlocksScanned:  r.BlocksScanned,
		BlocksSkipped:  r.BlocksSkipped,
		BlocksPruned:   r.BlocksPruned,
		LeavesTotal:    r.LeavesTotal,
		LeavesAnswered: r.LeavesAnswered,
		ShardsTotal:    r.ShardsTotal,
		ShardsAnswered: r.ShardsAnswered,
		Phases:         r.Phases,
		CacheHits:      r.CacheHits,
		CacheMisses:    r.CacheMisses,
	}
	for _, g := range r.groups {
		w.Groups = append(w.Groups, WireGroup{Key: g.Key, Aggs: g.Aggs})
	}
	return w
}

// Import rebuilds a Result from its wire form.
func Import(w *WireResult) *Result {
	r := NewResult()
	r.RowsScanned = w.RowsScanned
	r.BlocksScanned = w.BlocksScanned
	r.BlocksSkipped = w.BlocksSkipped
	r.BlocksPruned = w.BlocksPruned
	r.LeavesTotal = w.LeavesTotal
	r.LeavesAnswered = w.LeavesAnswered
	r.ShardsTotal = w.ShardsTotal
	r.ShardsAnswered = w.ShardsAnswered
	r.Phases = w.Phases
	r.CacheHits = w.CacheHits
	r.CacheMisses = w.CacheMisses
	for _, g := range w.Groups {
		r.groups[keyString(g.Key)] = &Group{Key: g.Key, Aggs: g.Aggs}
	}
	return r
}

// Row is one finalized output row.
type Row struct {
	Key    []string
	Values []float64
}

// Rows finalizes the result. Default order is descending count (then key,
// for determinism); q.OrderBy sorts by a chosen aggregation value instead,
// and a time-bucketed query comes back in bucket order first so callers can
// render the series directly. The list is trimmed to q.Limit.
func (r *Result) Rows(q *Query) []Row {
	groups := make([]*Group, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		gi, gj := groups[i], groups[j]
		if q.TimeBucketSeconds > 0 {
			bi, _ := strconv.ParseInt(gi.Key[0], 10, 64)
			bj, _ := strconv.ParseInt(gj.Key[0], 10, 64)
			if bi != bj {
				return bi < bj
			}
		}
		if q.OrderBy != nil && q.OrderBy.Agg < len(gi.Aggs) && q.OrderBy.Agg < len(gj.Aggs) {
			op := q.Aggregations[q.OrderBy.Agg].Op
			vi := gi.Aggs[q.OrderBy.Agg].Value(op)
			vj := gj.Aggs[q.OrderBy.Agg].Value(op)
			if vi != vj {
				if q.OrderBy.Asc {
					return vi < vj
				}
				return vi > vj
			}
		} else if ci, cj := groupCount(gi), groupCount(gj); ci != cj {
			return ci > cj
		}
		return keyString(gi.Key) < keyString(gj.Key)
	})
	if q.Limit > 0 && len(groups) > q.Limit {
		groups = groups[:q.Limit]
	}
	out := make([]Row, len(groups))
	for i, g := range groups {
		vals := make([]float64, len(q.Aggregations))
		for j, a := range q.Aggregations {
			if j < len(g.Aggs) {
				vals[j] = g.Aggs[j].Value(a.Op)
			}
		}
		out[i] = Row{Key: g.Key, Values: vals}
	}
	return out
}

func groupCount(g *Group) int64 {
	if len(g.Aggs) == 0 {
		return 0
	}
	return g.Aggs[0].Count
}

// Format renders rows as an aligned text table for CLIs and examples.
func Format(q *Query, rows []Row) string {
	var b strings.Builder
	if q.TimeBucketSeconds > 0 {
		fmt.Fprintf(&b, "%-20s", "time_bucket")
	}
	for _, col := range q.GroupBy {
		fmt.Fprintf(&b, "%-20s", col)
	}
	for _, a := range q.Aggregations {
		fmt.Fprintf(&b, "%16s", a.String())
	}
	b.WriteString("\n")
	for _, row := range rows {
		for _, k := range row.Key {
			fmt.Fprintf(&b, "%-20s", k)
		}
		for _, v := range row.Values {
			fmt.Fprintf(&b, "%16.3f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
