package query

import (
	"container/list"
	"sync"
	"sync/atomic"

	"scuba/internal/column"
	"scuba/internal/metrics"
	"scuba/internal/rowblock"
)

// DecodeCache is a per-table, byte-bounded LRU of decoded columns keyed by
// (sealed block, column name). Dashboards re-run the same handful of queries
// over the same recent blocks; without the cache every run pays LZ4 +
// dictionary decode for every referenced column of every block. Entries are
// immutable once inserted (decoded columns are read-only shared data), so a
// hit is a pointer copy.
//
// Only sealed *rowblock.RowBlock values are cached: unsealed views are
// rebuilt per query and their pointer would never hit again. The owning leaf
// invalidates a block's entries when the block leaves the table (expiration,
// shutdown copy-out) via InvalidateBlocks.
type DecodeCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[decodeKey]*list.Element

	// Counters are resolved once at construction; nil when no registry.
	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
	bytesG    *metrics.Gauge

	// localHits counts this cache's hits alone. The registry counters above
	// are shared across every table's cache; the promotion scheduler needs a
	// per-table signal to rank query heat, so this one stays local.
	localHits atomic.Int64
}

type decodeKey struct {
	blk  Block
	name string
}

type decodeEntry struct {
	key  decodeKey
	col  column.Column
	size int64
}

// NewDecodeCache returns a cache holding at most maxBytes of decoded
// columns. A nil or zero budget disables caching (every method is a cheap
// no-op on a nil cache). Metrics, when reg is non-nil, appear as
// query.decode_cache.{hits,misses,evictions,bytes}.
func NewDecodeCache(maxBytes int64, reg *metrics.Registry) *DecodeCache {
	if maxBytes <= 0 {
		return nil
	}
	c := &DecodeCache{
		max:     maxBytes,
		ll:      list.New(),
		entries: make(map[decodeKey]*list.Element),
	}
	if reg != nil {
		c.hits = reg.Counter("query.decode_cache.hits")
		c.misses = reg.Counter("query.decode_cache.misses")
		c.evictions = reg.Counter("query.decode_cache.evictions")
		c.bytesG = reg.Gauge("query.decode_cache.bytes")
	}
	return c
}

func count(c *metrics.Counter) {
	if c != nil {
		c.Add(1)
	}
}

// cacheable reports whether rb's decoded columns may be cached.
func cacheable(rb Block) bool {
	_, ok := rb.(*rowblock.RowBlock)
	return ok
}

// Get returns the cached decoded column, if present.
func (c *DecodeCache) Get(rb Block, name string) (column.Column, bool) {
	if c == nil || !cacheable(rb) {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[decodeKey{rb, name}]
	if !ok {
		count(c.misses)
		return nil, false
	}
	c.ll.MoveToFront(el)
	count(c.hits)
	c.localHits.Add(1)
	return el.Value.(*decodeEntry).col, true
}

// Hits returns how many lookups this cache (alone) has served from memory —
// the promotion scheduler's per-table query-heat signal. Safe on nil caches.
func (c *DecodeCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.localHits.Load()
}

// Put inserts a decoded column, evicting least-recently-used entries to stay
// under budget. Columns larger than the whole budget are not cached.
func (c *DecodeCache) Put(rb Block, name string, col column.Column) {
	if c == nil || !cacheable(rb) || col == nil {
		return
	}
	size := columnBytes(name, col)
	if size > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := decodeKey{rb, name}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*decodeEntry).col = col
		return
	}
	c.entries[key] = c.ll.PushFront(&decodeEntry{key: key, col: col, size: size})
	c.bytes += size
	for c.bytes > c.max {
		c.evictOldestLocked()
	}
	c.setBytesGaugeLocked()
}

func (c *DecodeCache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*decodeEntry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	count(c.evictions)
}

// InvalidateBlocks drops every entry belonging to the given blocks. Called
// by the owning leaf when blocks leave their table (expiration, shutdown
// copy-out), before the table releases the blocks' columns.
func (c *DecodeCache) InvalidateBlocks(blocks []*rowblock.RowBlock) {
	if c == nil || len(blocks) == 0 {
		return
	}
	gone := make(map[Block]bool, len(blocks))
	for _, rb := range blocks {
		gone[rb] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*decodeEntry)
		if gone[e.key.blk] {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.bytes -= e.size
		}
		el = next
	}
	c.setBytesGaugeLocked()
}

// Stats returns current occupancy for tests and debugging.
func (c *DecodeCache) Stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}

func (c *DecodeCache) setBytesGaugeLocked() {
	if c.bytesG != nil {
		c.bytesG.Set(c.bytes)
	}
}

// columnBytes estimates the in-memory footprint of a decoded column for the
// byte budget. Estimates err slightly low (slice headers, map overhead are
// ignored) — the budget is a pressure valve, not an accountant.
func columnBytes(name string, col column.Column) int64 {
	n := int64(len(name)) + 64 // key + entry bookkeeping
	switch c := col.(type) {
	case *column.Int64Column:
		n += int64(len(c.Values)) * 8
	case *column.Float64Column:
		n += int64(len(c.Values)) * 8
	case *column.StringColumn:
		for _, s := range c.Dict {
			n += int64(len(s)) + 16
		}
		n += int64(len(c.IDs)) * 4
	case *column.StringSetColumn:
		for _, s := range c.Dict {
			n += int64(len(s)) + 16
		}
		for _, row := range c.Rows {
			n += int64(len(row))*4 + 24
		}
	}
	return n
}
