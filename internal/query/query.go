// Package query implements Scuba's query model: aggregation queries with a
// required time-range predicate, optional column filters, and group-by.
// Queries run per leaf over that leaf's row blocks — skipping blocks whose
// min/max time headers fall outside the range (§2.1) — and produce partial
// results that the aggregator merges (§2). Partial results are first-class:
// Scuba returns them whenever some leaves are unavailable (§1).
package query

import (
	"errors"
	"fmt"
	"strings"
)

// CompareOp is a filter comparison.
type CompareOp uint8

// Filter operators. OpContains applies to string-set columns.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "contains"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Filter is one predicate on a column. Exactly one of the value fields is
// used, matching the column's type.
type Filter struct {
	Column string
	Op     CompareOp
	Int    int64
	Float  float64
	Str    string
}

// AggOp is an aggregation operator.
type AggOp uint8

// Aggregation operators. Percentiles use a mergeable log-scale histogram.
const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggP50
	AggP90
	AggP99
	// AggCountDistinct counts distinct values of a column (exact, via a
	// mergeable set — "how many distinct hosts threw this error" is a
	// staple Scuba question).
	AggCountDistinct
)

func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggP50:
		return "p50"
	case AggP90:
		return "p90"
	case AggP99:
		return "p99"
	case AggCountDistinct:
		return "count_distinct"
	default:
		return fmt.Sprintf("agg(%d)", uint8(op))
	}
}

// needsColumn reports whether the op reads a value column (count does not).
func (op AggOp) needsColumn() bool { return op != AggCount }

// Aggregation names one output: an operator over a column.
type Aggregation struct {
	Op     AggOp
	Column string // empty for count
}

func (a Aggregation) String() string {
	if a.Column == "" {
		return a.Op.String()
	}
	return a.Op.String() + "(" + a.Column + ")"
}

// Order overrides the default result ordering (descending row count).
type Order struct {
	// Agg is the index into Aggregations whose finalized value orders the
	// groups.
	Agg int
	// Asc sorts ascending instead of descending.
	Asc bool
}

// Query is one aggregation query. From/To bound the required time column
// (inclusive); nearly all Scuba queries carry time predicates (§2.1).
type Query struct {
	Table        string
	From, To     int64
	Filters      []Filter
	Aggregations []Aggregation
	GroupBy      []string
	// TimeBucketSeconds, when positive, adds an implicit leading group-by
	// of floor(time/bucket)*bucket — the time-series view every Scuba
	// dashboard panel is built from. Series rows come back ordered by
	// bucket, then by the usual group order within a bucket.
	TimeBucketSeconds int64
	// OrderBy overrides the default ordering (descending count).
	OrderBy *Order
	// Limit caps the number of groups returned (0 = unlimited). Groups are
	// ordered by descending count so the cap keeps the heaviest hitters.
	Limit int
}

// Validate rejects structurally bad queries before execution.
func (q *Query) Validate() error {
	if q.Table == "" {
		return errors.New("query: table required")
	}
	if q.From > q.To {
		return fmt.Errorf("query: empty time range [%d, %d]", q.From, q.To)
	}
	if len(q.Aggregations) == 0 {
		return errors.New("query: at least one aggregation required")
	}
	for _, a := range q.Aggregations {
		if a.Op.needsColumn() && a.Column == "" {
			return fmt.Errorf("query: %v requires a column", a.Op)
		}
		if a.Op == AggCount && a.Column != "" {
			return errors.New("query: count takes no column")
		}
	}
	for _, g := range q.GroupBy {
		if g == "" {
			return errors.New("query: empty group-by column")
		}
	}
	if q.TimeBucketSeconds < 0 {
		return errors.New("query: negative time bucket")
	}
	if q.OrderBy != nil && (q.OrderBy.Agg < 0 || q.OrderBy.Agg >= len(q.Aggregations)) {
		return fmt.Errorf("query: order-by aggregation %d out of range", q.OrderBy.Agg)
	}
	if q.Limit < 0 {
		return errors.New("query: negative limit")
	}
	return nil
}

// String renders a query for logs and dashboards.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, a := range q.Aggregations {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	fmt.Fprintf(&b, " FROM %s WHERE time IN [%d, %d]", q.Table, q.From, q.To)
	for _, f := range q.Filters {
		fmt.Fprintf(&b, " AND %s %v ...", f.Column, f.Op)
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(q.GroupBy, ", "))
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
