package query

import (
	"testing"

	"scuba/internal/metrics"
)

// TestPhaseTimesRecorded checks that execution fills the per-phase
// breakdown: a scan that decodes columns and tests zone maps must report
// decode, prune and scan time, and the worker partial-merge must land in
// MergeNanos on the parallel path.
func TestPhaseTimesRecorded(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []Aggregation{{Op: AggAvg, Column: "latency"}},
	}
	res, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.DecodeNanos <= 0 {
		t.Errorf("DecodeNanos = %d, want > 0 (columns were decoded)", res.Phases.DecodeNanos)
	}
	if res.Phases.PruneNanos <= 0 {
		t.Errorf("PruneNanos = %d, want > 0 (zone maps were tested)", res.Phases.PruneNanos)
	}
	if res.Phases.ScanNanos <= 0 {
		t.Errorf("ScanNanos = %d, want > 0 (rows were scanned)", res.Phases.ScanNanos)
	}
	if res.Phases.MergeNanos <= 0 {
		t.Errorf("MergeNanos = %d, want > 0 (worker partials were merged)", res.Phases.MergeNanos)
	}
}

// TestPhaseTimesPrunedQuery checks the pruned-everything shape: when zone
// maps reject every block, prune time is the only block-level cost and no
// decode or scan time accrues.
func TestPhaseTimesPrunedQuery(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCount}},
		// latency is always in [0,19]; this filter can never match.
		Filters: []Filter{{Column: "latency", Op: OpGt, Int: 1000, Float: 1000}},
	}
	res, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksPruned != 3 {
		t.Fatalf("BlocksPruned = %d, want 3", res.BlocksPruned)
	}
	if res.Phases.PruneNanos <= 0 {
		t.Errorf("PruneNanos = %d, want > 0", res.Phases.PruneNanos)
	}
	if res.Phases.DecodeNanos != 0 || res.RowsScanned != 0 {
		t.Errorf("pruned query decoded anyway: decode=%dns rows=%d",
			res.Phases.DecodeNanos, res.RowsScanned)
	}
}

// TestPhaseTimesMergeAcrossResults checks that Merge sums phase times and
// cache counters — the aggregator relies on this to report cross-leaf
// totals on the merged result.
func TestPhaseTimesMergeAcrossResults(t *testing.T) {
	a, b := NewResult(), NewResult()
	a.Phases = PhaseTimes{DecodeNanos: 10, PruneNanos: 20, ScanNanos: 30, MergeNanos: 40}
	a.CacheHits, a.CacheMisses = 5, 1
	b.Phases = PhaseTimes{DecodeNanos: 1, PruneNanos: 2, ScanNanos: 3, MergeNanos: 4}
	b.CacheHits, b.CacheMisses = 2, 7
	a.Merge(b)
	want := PhaseTimes{DecodeNanos: 11, PruneNanos: 22, ScanNanos: 33, MergeNanos: 44}
	if a.Phases != want {
		t.Errorf("merged phases = %+v, want %+v", a.Phases, want)
	}
	if a.CacheHits != 7 || a.CacheMisses != 8 {
		t.Errorf("merged cache counters = %d/%d, want 7/8", a.CacheHits, a.CacheMisses)
	}
}

// TestResultCacheCountersMatchRegistry checks the per-query counters track
// the registry exactly: one cold run is all misses, one warm run all hits.
func TestResultCacheCountersMatchRegistry(t *testing.T) {
	tbl := fixtureTable(t)
	reg := metrics.NewRegistry()
	dc := NewDecodeCache(64<<20, reg)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []Aggregation{{Op: AggAvg, Column: "latency"}},
	}
	cold, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := cacheCounters(reg)
	if cold.CacheHits != hits || cold.CacheMisses != misses {
		t.Errorf("cold result counters %d/%d, registry %d/%d",
			cold.CacheHits, cold.CacheMisses, hits, misses)
	}
	if cold.CacheMisses == 0 {
		t.Error("cold run reported no misses")
	}

	warm, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits == 0 || warm.CacheMisses != 0 {
		t.Errorf("warm result counters %d/%d, want all hits", warm.CacheHits, warm.CacheMisses)
	}
	regHits, _, _ := cacheCounters(reg)
	if regHits != hits+warm.CacheHits {
		t.Errorf("registry hits %d, want %d", regHits, hits+warm.CacheHits)
	}

	// The per-phase and cache fields survive the wire round trip.
	back := Import(warm.Export())
	if back.Phases != warm.Phases || back.CacheHits != warm.CacheHits || back.CacheMisses != warm.CacheMisses {
		t.Errorf("wire round trip dropped trace fields: %+v vs %+v", back, warm)
	}
}
