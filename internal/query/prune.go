package query

import "scuba/internal/rowblock"

// Zone-map pruning: before decoding anything, the executor tests each filter
// against the block's per-column summaries (C-Store-style min/max and
// dictionary Bloom filters, stamped at seal time). A summary that excludes
// every possible row lets the whole block be skipped — no LZ4 decode, no
// per-row mask work — counted as Result.BlocksPruned.
//
// Pruning must be invisible apart from speed: a pruned block and a scanned
// block must contribute identically (nothing) to the result, including error
// behavior. ScanBlock stops applying filters the moment the live-row count
// hits zero, so a type error in filter k is only ever surfaced when filters
// 1..k-1 left rows alive. blockPruned mirrors that exactly: it walks filters
// in order and prunes on the first zone exclusion, but gives up (scans) as
// soon as it meets a filter it cannot prove error-free, so it never hides an
// error a real scan would have returned.

// zoner is implemented by sealed row blocks that carry zone maps. Unsealed
// views and blocks restored from v1 images either don't implement it or
// return nil zones, and are always scanned.
type zoner interface {
	ColumnZone(name string) *rowblock.ZoneMap
}

// blockPruned reports whether zone maps prove no row of rb can match q.
func blockPruned(rb Block, q *Query) bool {
	z, ok := rb.(zoner)
	if !ok {
		return false
	}
	for _, f := range q.Filters {
		zm := z.ColumnZone(f.Column)
		if zoneExcludes(zm, f) {
			return true
		}
		if !filterErrorFree(rb, zm, f) {
			return false
		}
	}
	return false
}

// zoneExcludes reports whether the zone map proves no row matches f. Only
// operator/kind pairs that applyFilter evaluates without error may prune;
// everything else answers false (must scan). A nil zone map (absent column,
// v1 image) never prunes.
func zoneExcludes(z *rowblock.ZoneMap, f Filter) bool {
	if z == nil {
		return false
	}
	switch z.Kind {
	case rowblock.ZoneInt:
		switch f.Op {
		case OpEq:
			return f.Int < z.MinI || f.Int > z.MaxI
		case OpNe:
			return z.MinI == z.MaxI && z.MinI == f.Int
		case OpLt:
			return z.MinI >= f.Int
		case OpLe:
			return z.MinI > f.Int
		case OpGt:
			return z.MaxI <= f.Int
		case OpGe:
			return z.MaxI < f.Int
		}
	case rowblock.ZoneFloat:
		// A NaN operand compares false everywhere below, so it never prunes
		// (and the scan would match nothing anyway). Blocks containing NaN
		// values sealed a ZoneNone summary and never reach this point.
		switch f.Op {
		case OpEq:
			return f.Float < z.MinF || f.Float > z.MaxF
		case OpNe:
			return z.MinF == z.MaxF && z.MinF == f.Float
		case OpLt:
			return z.MinF >= f.Float
		case OpLe:
			return z.MinF > f.Float
		case OpGt:
			return z.MaxF <= f.Float
		case OpGe:
			return z.MaxF < f.Float
		}
	case rowblock.ZoneDict:
		if f.Op == OpEq {
			return !z.MayContain(f.Str)
		}
	case rowblock.ZoneSetDict:
		if f.Op == OpContains {
			return !z.MayContain(f.Str)
		}
	}
	return false
}

// filterErrorFree reports whether applying f to this block provably cannot
// return a type error, judged from the zone kind (which encodes the column's
// sealed type). Unknown type (zone-less column in the schema) answers false.
func filterErrorFree(rb Block, zm *rowblock.ZoneMap, f Filter) bool {
	if zm == nil {
		// Absent column: the zero-value path never errors. Present but
		// unsummarized (v1 image): type unknown, assume the worst.
		return !rb.HasColumn(f.Column)
	}
	switch zm.Kind {
	case rowblock.ZoneInt, rowblock.ZoneFloat, rowblock.ZoneDict:
		return f.Op != OpContains
	case rowblock.ZoneSetDict:
		return f.Op == OpContains
	}
	return false
}
