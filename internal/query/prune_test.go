package query

import (
	"reflect"
	"testing"

	"scuba/internal/rowblock"
	"scuba/internal/table"
)

// noZones hides a block's zone maps so the executor cannot prune it: the
// embedded interface only promotes Block's methods, so the wrapper never
// satisfies the zoner assertion. Tests use it to force-scan.
type noZones struct{ Block }

// forceScan runs a query over blocks with pruning disabled.
func forceScan(t *testing.T, blocks []*rowblock.RowBlock, q *Query) (*Result, error) {
	t.Helper()
	res := NewResult()
	for _, rb := range blocks {
		if !rb.Overlaps(q.From, q.To) {
			continue
		}
		if err := ScanBlock(noZones{rb}, q, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// zoneFixture builds a table whose 4 blocks have disjoint value ranges so
// point filters prune precisely: block b holds status 100b..100b+99,
// latency 1000b..1000b+99 (float), service "svc-b", tags {"tb"}.
func zoneFixture(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("events", table.Options{})
	for b := 0; b < 4; b++ {
		rows := make([]rowblock.Row, 100)
		for i := range rows {
			rows[i] = rowblock.Row{
				Time: 1000 + int64(b*100+i),
				Cols: map[string]rowblock.Value{
					"status":  rowblock.Int64Value(int64(100*b + i)),
					"latency": rowblock.Float64Value(float64(1000*b + i)),
					"service": rowblock.StringValue([]string{"svc-0", "svc-1", "svc-2", "svc-3"}[b]),
					"tags":    rowblock.SetValue("t" + string(rune('0'+b))),
				},
			}
		}
		if err := tbl.AddRows(rows, 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestZonePruneInt(t *testing.T) {
	tbl := zoneFixture(t)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		Filters:      []Filter{{Column: "status", Op: OpEq, Int: 150}},
		Aggregations: []Aggregation{{Op: AggCount}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksPruned != 3 || res.BlocksScanned != 1 {
		t.Errorf("pruned %d scanned %d, want 3/1", res.BlocksPruned, res.BlocksScanned)
	}
	rows := res.Rows(q)
	if len(rows) != 1 || rows[0].Values[0] != 1 {
		t.Errorf("rows = %+v", rows)
	}

	// Range filters prune too: status > 350 excludes blocks 0-2.
	q.Filters = []Filter{{Column: "status", Op: OpGt, Int: 350}}
	res, err = ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksPruned != 3 || res.BlocksScanned != 1 {
		t.Errorf("Gt: pruned %d scanned %d", res.BlocksPruned, res.BlocksScanned)
	}
	if res.Rows(q)[0].Values[0] != 49 { // 351..399
		t.Errorf("Gt count = %v", res.Rows(q)[0].Values[0])
	}

	q.Filters = []Filter{{Column: "status", Op: OpLt, Int: 100}}
	res, err = ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksPruned != 3 || res.BlocksScanned != 1 {
		t.Errorf("Lt: pruned %d scanned %d", res.BlocksPruned, res.BlocksScanned)
	}
}

func TestZonePruneFloat(t *testing.T) {
	tbl := zoneFixture(t)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		Filters:      []Filter{{Column: "latency", Op: OpGe, Float: 3000}},
		Aggregations: []Aggregation{{Op: AggCount}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksPruned != 3 || res.BlocksScanned != 1 {
		t.Errorf("pruned %d scanned %d", res.BlocksPruned, res.BlocksScanned)
	}
	if res.Rows(q)[0].Values[0] != 100 {
		t.Errorf("count = %v", res.Rows(q)[0].Values[0])
	}
}

func TestZonePruneString(t *testing.T) {
	tbl := zoneFixture(t)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		Filters:      []Filter{{Column: "service", Op: OpEq, Str: "svc-2"}},
		Aggregations: []Aggregation{{Op: AggCount}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	// Bloom filters may admit false positives, so pruned is at most 3; the
	// result must be exact regardless.
	if res.BlocksPruned+res.BlocksScanned != 4 || res.BlocksScanned < 1 {
		t.Errorf("pruned %d scanned %d", res.BlocksPruned, res.BlocksScanned)
	}
	if res.Rows(q)[0].Values[0] != 100 {
		t.Errorf("count = %v", res.Rows(q)[0].Values[0])
	}

	q.Filters = []Filter{{Column: "tags", Op: OpContains, Str: "t3"}}
	res, err = ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksPruned+res.BlocksScanned != 4 || res.BlocksScanned < 1 {
		t.Errorf("contains: pruned %d scanned %d", res.BlocksPruned, res.BlocksScanned)
	}
	if res.Rows(q)[0].Values[0] != 100 {
		t.Errorf("contains count = %v", res.Rows(q)[0].Values[0])
	}
}

// TestZonePruneAgreesWithScan compares the pruned executor against a forced
// full scan across a spread of queries.
func TestZonePruneAgreesWithScan(t *testing.T) {
	tbl := zoneFixture(t)
	blocks := tbl.Blocks()
	queries := []*Query{
		{Table: "events", From: 0, To: 1 << 40, Filters: []Filter{{Column: "status", Op: OpEq, Int: 42}},
			Aggregations: []Aggregation{{Op: AggCount}, {Op: AggSum, Column: "latency"}}},
		{Table: "events", From: 0, To: 1 << 40, Filters: []Filter{{Column: "status", Op: OpNe, Int: 0}},
			Aggregations: []Aggregation{{Op: AggCount}}},
		{Table: "events", From: 0, To: 1 << 40, Filters: []Filter{{Column: "status", Op: OpLe, Int: -1}},
			Aggregations: []Aggregation{{Op: AggCount}}},
		{Table: "events", From: 0, To: 1 << 40, Filters: []Filter{{Column: "latency", Op: OpLt, Float: 500}},
			Aggregations: []Aggregation{{Op: AggAvg, Column: "status"}}, GroupBy: []string{"service"}},
		{Table: "events", From: 0, To: 1 << 40, Filters: []Filter{{Column: "service", Op: OpEq, Str: "nope"}},
			Aggregations: []Aggregation{{Op: AggCount}}},
		{Table: "events", From: 0, To: 1 << 40, Filters: []Filter{{Column: "tags", Op: OpContains, Str: "t1"}},
			Aggregations: []Aggregation{{Op: AggCountDistinct, Column: "service"}}},
		{Table: "events", From: 0, To: 1 << 40,
			Filters:      []Filter{{Column: "status", Op: OpGe, Int: 100}, {Column: "latency", Op: OpLt, Float: 2000}},
			Aggregations: []Aggregation{{Op: AggMin, Column: "status"}, {Op: AggMax, Column: "status"}}},
		{Table: "events", From: 0, To: 1 << 40, Filters: []Filter{{Column: "absent", Op: OpEq, Int: 7}},
			Aggregations: []Aggregation{{Op: AggCount}}},
	}
	for qi, q := range queries {
		pruned, err := ExecuteTable(tbl, q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		scanned, err := forceScan(t, blocks, q)
		if err != nil {
			t.Fatalf("query %d force scan: %v", qi, err)
		}
		if !reflect.DeepEqual(pruned.Rows(q), scanned.Rows(q)) {
			t.Errorf("query %d: pruned %+v != scanned %+v", qi, pruned.Rows(q), scanned.Rows(q))
		}
	}
}

// TestZonePruneNeverHidesTypeErrors pins the error-parity rule: a query
// whose earlier filter would type-error must not be silently pruned by a
// later filter's zone map.
func TestZonePruneNeverHidesTypeErrors(t *testing.T) {
	tbl := zoneFixture(t)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		// Filter 1 errors (contains on an int column); filter 2's zone
		// excludes every block. The scan must report the error.
		Filters: []Filter{
			{Column: "status", Op: OpContains, Str: "x"},
			{Column: "status", Op: OpEq, Int: -1},
		},
		Aggregations: []Aggregation{{Op: AggCount}},
	}
	if _, err := ExecuteTable(tbl, q); err == nil {
		t.Fatalf("type error hidden by zone pruning")
	}

	// Same shape but the erroring filter comes after the excluding one: the
	// serial scan would zero the mask on filter 1 and never reach filter 2,
	// so pruning (which skips the error too) agrees with scanning.
	q.Filters = []Filter{
		{Column: "status", Op: OpEq, Int: -1},
		{Column: "status", Op: OpContains, Str: "x"},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatalf("prunable-first query errored: %v", err)
	}
	scanned, err := forceScan(t, tbl.Blocks(), q)
	if err != nil {
		t.Fatalf("force scan errored: %v", err)
	}
	if !reflect.DeepEqual(res.Rows(q), scanned.Rows(q)) {
		t.Errorf("pruned and scanned disagree")
	}
}

// TestParallelMatchesSerial runs the same queries at several pool sizes and
// demands identical results (merge is associative/commutative; order-free).
func TestParallelMatchesSerial(t *testing.T) {
	tbl := zoneFixture(t)
	queries := []*Query{
		{Table: "events", From: 0, To: 1 << 40, Aggregations: []Aggregation{{Op: AggCount}, {Op: AggSum, Column: "status"}}},
		{Table: "events", From: 0, To: 1 << 40, GroupBy: []string{"service"},
			Aggregations: []Aggregation{{Op: AggAvg, Column: "latency"}, {Op: AggP50, Column: "latency"}}},
		{Table: "events", From: 1150, To: 1250, Aggregations: []Aggregation{{Op: AggCountDistinct, Column: "service"}}},
		{Table: "events", From: 0, To: 1 << 40, TimeBucketSeconds: 100,
			Aggregations: []Aggregation{{Op: AggMax, Column: "status"}}},
	}
	for qi, q := range queries {
		serial, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 1})
		if err != nil {
			t.Fatalf("query %d serial: %v", qi, err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: workers})
			if err != nil {
				t.Fatalf("query %d workers=%d: %v", qi, workers, err)
			}
			if !reflect.DeepEqual(serial.Rows(q), par.Rows(q)) {
				t.Errorf("query %d workers=%d: results diverge", qi, workers)
			}
			if serial.RowsScanned != par.RowsScanned || serial.BlocksScanned != par.BlocksScanned ||
				serial.BlocksPruned != par.BlocksPruned || serial.BlocksSkipped != par.BlocksSkipped {
				t.Errorf("query %d workers=%d: accounting diverges (%d/%d/%d/%d vs %d/%d/%d/%d)",
					qi, workers,
					serial.RowsScanned, serial.BlocksScanned, serial.BlocksPruned, serial.BlocksSkipped,
					par.RowsScanned, par.BlocksScanned, par.BlocksPruned, par.BlocksSkipped)
			}
		}
	}
}

// TestParallelErrorPropagates pins that a worker error reaches the caller.
func TestParallelErrorPropagates(t *testing.T) {
	tbl := zoneFixture(t)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		// Contains on an int column errors in every block; no zone prunes it.
		Filters:      []Filter{{Column: "status", Op: OpContains, Str: "x"}},
		Aggregations: []Aggregation{{Op: AggCount}},
	}
	if _, err := ExecuteTableOpts(tbl, q, ExecOptions{Workers: 4}); err == nil {
		t.Fatalf("worker error swallowed")
	}
}

// TestBlocksSkippedAccounting pins skipped = total - scanned - pruned.
func TestBlocksSkippedAccounting(t *testing.T) {
	tbl := zoneFixture(t)
	// Time range hits blocks 1-2 only; the status filter prunes block 2.
	q := &Query{
		Table: "events", From: 1100, To: 1299,
		Filters:      []Filter{{Column: "status", Op: OpLt, Int: 200}},
		Aggregations: []Aggregation{{Op: AggCount}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksScanned != 1 || res.BlocksPruned != 1 || res.BlocksSkipped != 2 {
		t.Errorf("scanned/pruned/skipped = %d/%d/%d, want 1/1/2",
			res.BlocksScanned, res.BlocksPruned, res.BlocksSkipped)
	}
}

// TestV1ImageQueriesIdentically loads the golden v1 image (no zone maps) and
// checks a query over it matches the same rows freshly sealed today (v2,
// with zones): format version must not change results.
func TestV1ImageQueriesIdentically(t *testing.T) {
	img := readGoldenV1(t)
	v1, _, err := rowblock.DecodeImage(img, true)
	if err != nil {
		t.Fatal(err)
	}
	fresh := sealGoldenRows(t)

	queries := []*Query{
		{Table: "g", From: 0, To: 1 << 40, Aggregations: []Aggregation{{Op: AggCount}, {Op: AggSum, Column: "status"}}},
		{Table: "g", From: 0, To: 1 << 40, Filters: []Filter{{Column: "status", Op: OpEq, Int: 300}},
			Aggregations: []Aggregation{{Op: AggAvg, Column: "latency_ms"}}},
		{Table: "g", From: 0, To: 1 << 40, GroupBy: []string{"service"},
			Aggregations: []Aggregation{{Op: AggCount}}},
		{Table: "g", From: 0, To: 1 << 40, Filters: []Filter{{Column: "tags", Op: OpContains, Str: "t2"}},
			Aggregations: []Aggregation{{Op: AggCount}}},
	}
	for qi, q := range queries {
		rv1, rv2 := NewResult(), NewResult()
		if err := ScanBlock(v1, q, rv1); err != nil {
			t.Fatalf("query %d on v1 block: %v", qi, err)
		}
		if err := ScanBlock(fresh, q, rv2); err != nil {
			t.Fatalf("query %d on fresh block: %v", qi, err)
		}
		if !reflect.DeepEqual(rv1.Rows(q), rv2.Rows(q)) {
			t.Errorf("query %d: v1 %+v != fresh %+v", qi, rv1.Rows(q), rv2.Rows(q))
		}
	}
}
