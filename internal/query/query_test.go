package query

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"scuba/internal/rowblock"
	"scuba/internal/table"
)

// fixtureTable builds a table with 3 blocks x 100 rows of service logs.
// Rows have time = 1000+i, service in {web,ads,search}, latency = i%20,
// cpu = i/10.0, tags = {prod, tierN}.
func fixtureTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("events", table.Options{})
	for b := 0; b < 3; b++ {
		rows := make([]rowblock.Row, 100)
		for i := range rows {
			abs := b*100 + i
			rows[i] = rowblock.Row{
				Time: 1000 + int64(abs),
				Cols: map[string]rowblock.Value{
					"service": rowblock.StringValue([]string{"web", "ads", "search"}[abs%3]),
					"latency": rowblock.Int64Value(int64(abs % 20)),
					"cpu":     rowblock.Float64Value(float64(abs) / 10),
					"tags":    rowblock.SetValue("prod", fmt.Sprintf("tier%d", abs%2)),
				},
			}
		}
		if err := tbl.AddRows(rows, 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestValidate(t *testing.T) {
	good := &Query{Table: "t", From: 0, To: 10, Aggregations: []Aggregation{{Op: AggCount}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good query rejected: %v", err)
	}
	bad := []*Query{
		{From: 0, To: 10, Aggregations: []Aggregation{{Op: AggCount}}},                          // no table
		{Table: "t", From: 10, To: 0, Aggregations: []Aggregation{{Op: AggCount}}},              // empty range
		{Table: "t", From: 0, To: 10},                                                           // no aggs
		{Table: "t", From: 0, To: 10, Aggregations: []Aggregation{{Op: AggSum}}},                // sum without column
		{Table: "t", From: 0, To: 10, Aggregations: []Aggregation{{Op: AggCount, Column: "x"}}}, // count with column
		{Table: "t", From: 0, To: 10, Aggregations: []Aggregation{{Op: AggCount}}, GroupBy: []string{""}},
		{Table: "t", From: 0, To: 10, Aggregations: []Aggregation{{Op: AggCount}}, Limit: -1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestCountAll(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40, Aggregations: []Aggregation{{Op: AggCount}}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) != 1 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0].Values[0] != 300 {
		t.Errorf("count = %v", rows[0].Values[0])
	}
	if res.BlocksScanned != 3 || res.BlocksSkipped != 0 {
		t.Errorf("blocks: scanned %d skipped %d", res.BlocksScanned, res.BlocksSkipped)
	}
}

func TestTimePruning(t *testing.T) {
	tbl := fixtureTable(t)
	// Only the middle block [1100, 1199] overlaps.
	q := &Query{Table: "events", From: 1150, To: 1160, Aggregations: []Aggregation{{Op: AggCount}}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksScanned != 1 || res.BlocksSkipped != 2 {
		t.Errorf("blocks: scanned %d skipped %d", res.BlocksScanned, res.BlocksSkipped)
	}
	rows := res.Rows(q)
	if rows[0].Values[0] != 11 { // 1150..1160 inclusive
		t.Errorf("count = %v", rows[0].Values[0])
	}
}

func TestGroupByString(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{
		Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCount}, {Op: AggAvg, Column: "latency"}},
		GroupBy:      []string{"service"},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	total := 0.0
	for _, r := range rows {
		total += r.Values[0]
	}
	if total != 300 {
		t.Errorf("total count = %v", total)
	}
}

func TestFilters(t *testing.T) {
	tbl := fixtureTable(t)
	cases := []struct {
		name   string
		filter Filter
		want   float64
	}{
		{"string eq", Filter{Column: "service", Op: OpEq, Str: "web"}, 100},
		{"string ne", Filter{Column: "service", Op: OpNe, Str: "web"}, 200},
		{"int lt", Filter{Column: "latency", Op: OpLt, Int: 10}, 150},
		{"int ge", Filter{Column: "latency", Op: OpGe, Int: 10}, 150},
		{"float gt", Filter{Column: "cpu", Op: OpGt, Float: 14.95}, 150},
		{"set contains", Filter{Column: "tags", Op: OpContains, Str: "tier0"}, 150},
		{"set contains missing", Filter{Column: "tags", Op: OpContains, Str: "nope"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := &Query{Table: "events", From: 0, To: 1 << 40,
				Filters: []Filter{c.filter}, Aggregations: []Aggregation{{Op: AggCount}}}
			res, err := ExecuteTable(tbl, q)
			if err != nil {
				t.Fatal(err)
			}
			rows := res.Rows(q)
			got := 0.0
			if len(rows) > 0 {
				got = rows[0].Values[0]
			}
			if got != c.want {
				t.Errorf("count = %v, want %v", got, c.want)
			}
		})
	}
}

func TestFilterConjunction(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Filters: []Filter{
			{Column: "service", Op: OpEq, Str: "web"},
			{Column: "latency", Op: OpLt, Int: 6},
		},
		Aggregations: []Aggregation{{Op: AggCount}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	// service=web means abs%3==0; latency<6 means abs%20 in {0..5}.
	want := 0.0
	for abs := 0; abs < 300; abs++ {
		if abs%3 == 0 && abs%20 < 6 {
			want++
		}
	}
	rows := res.Rows(q)
	if rows[0].Values[0] != want {
		t.Errorf("count = %v, want %v", rows[0].Values[0], want)
	}
}

func TestAggregators(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{
			{Op: AggSum, Column: "latency"},
			{Op: AggMin, Column: "latency"},
			{Op: AggMax, Column: "latency"},
			{Op: AggAvg, Column: "cpu"},
		}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	var wantSum float64
	for abs := 0; abs < 300; abs++ {
		wantSum += float64(abs % 20)
	}
	v := rows[0].Values
	if v[0] != wantSum {
		t.Errorf("sum = %v, want %v", v[0], wantSum)
	}
	if v[1] != 0 || v[2] != 19 {
		t.Errorf("min/max = %v/%v", v[1], v[2])
	}
	wantAvg := (0.0 + 29.9) / 2
	if math.Abs(v[3]-wantAvg) > 0.01 {
		t.Errorf("avg = %v, want %v", v[3], wantAvg)
	}
}

func TestPercentiles(t *testing.T) {
	tbl := table.New("lat", table.Options{})
	rows := make([]rowblock.Row, 1000)
	for i := range rows {
		rows[i] = rowblock.Row{Time: int64(i),
			Cols: map[string]rowblock.Value{"ms": rowblock.Int64Value(int64(i))}}
	}
	if err := tbl.AddRows(rows, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SealActive(); err != nil {
		t.Fatal(err)
	}
	q := &Query{Table: "lat", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggP50, Column: "ms"}, {Op: AggP99, Column: "ms"}}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows(q)[0].Values
	// Log-scale histogram: answers are approximate, within a factor of 2.
	if v[0] < 250 || v[0] > 1000 {
		t.Errorf("p50 = %v, want ~500", v[0])
	}
	if v[1] < 495 || v[1] > 2000 {
		t.Errorf("p99 = %v, want ~990", v[1])
	}
	if v[0] > v[1] {
		t.Errorf("p50 %v > p99 %v", v[0], v[1])
	}
}

func TestMergePartialResults(t *testing.T) {
	tbl := fixtureTable(t)
	full := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCount}, {Op: AggSum, Column: "latency"}, {Op: AggP90, Column: "latency"}},
		GroupBy:      []string{"service"}}

	// Whole-table result versus merging three per-block partials.
	want, err := ExecuteTable(tbl, full)
	if err != nil {
		t.Fatal(err)
	}
	merged := NewResult()
	for _, rb := range tbl.Blocks() {
		part := NewResult()
		if err := ScanBlock(rb, full, part); err != nil {
			t.Fatal(err)
		}
		merged.Merge(part)
	}
	wr, mr := want.Rows(full), merged.Rows(full)
	if len(wr) != len(mr) {
		t.Fatalf("group counts differ: %d vs %d", len(wr), len(mr))
	}
	for i := range wr {
		if strings.Join(wr[i].Key, ",") != strings.Join(mr[i].Key, ",") {
			t.Errorf("row %d key %v vs %v", i, wr[i].Key, mr[i].Key)
		}
		for j := range wr[i].Values {
			if math.Abs(wr[i].Values[j]-mr[i].Values[j]) > 1e-9 {
				t.Errorf("row %d value %d: %v vs %v", i, j, wr[i].Values[j], mr[i].Values[j])
			}
		}
	}
	if merged.RowsScanned != want.RowsScanned {
		t.Errorf("rows scanned %d vs %d", merged.RowsScanned, want.RowsScanned)
	}
}

func TestMissingColumnSemantics(t *testing.T) {
	tbl := fixtureTable(t)
	// Filtering on a column no block has: zero-value semantics.
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Filters:      []Filter{{Column: "ghost", Op: OpEq, Str: "x"}},
		Aggregations: []Aggregation{{Op: AggCount}}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 0 {
		t.Errorf("ghost=x matched %d groups", res.NumGroups())
	}
	// ghost != x matches everything ("" != "x").
	q.Filters[0].Op = OpNe
	res, err = ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.Rows(q); len(rows) == 0 || rows[0].Values[0] != 300 {
		t.Errorf("ghost!=x rows = %v", rows)
	}
	// Group by a missing column: single empty-string group.
	q2 := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCount}}, GroupBy: []string{"ghost"}}
	res, err = ExecuteTable(tbl, q2)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q2)
	if len(rows) != 1 || rows[0].Key[0] != "" {
		t.Errorf("rows = %v", rows)
	}
}

func TestGroupByIntAndLimit(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []Aggregation{{Op: AggCount}},
		GroupBy:      []string{"latency"},
		Limit:        5,
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) != 5 {
		t.Errorf("limit ignored: %d rows", len(rows))
	}
	// All 20 latency values appear 15 times each; tie-break is by key.
	if rows[0].Values[0] != 15 {
		t.Errorf("top count = %v", rows[0].Values[0])
	}
}

func TestTypeErrors(t *testing.T) {
	tbl := fixtureTable(t)
	bad := []*Query{
		{Table: "events", From: 0, To: 1 << 40,
			Filters:      []Filter{{Column: "latency", Op: OpContains, Str: "x"}},
			Aggregations: []Aggregation{{Op: AggCount}}},
		{Table: "events", From: 0, To: 1 << 40,
			Filters:      []Filter{{Column: "tags", Op: OpEq, Str: "x"}},
			Aggregations: []Aggregation{{Op: AggCount}}},
		{Table: "events", From: 0, To: 1 << 40,
			Aggregations: []Aggregation{{Op: AggSum, Column: "service"}}},
		{Table: "events", From: 0, To: 1 << 40,
			Aggregations: []Aggregation{{Op: AggCount}}, GroupBy: []string{"tags"}},
	}
	for i, q := range bad {
		if _, err := ExecuteTable(tbl, q); err == nil {
			t.Errorf("bad query %d succeeded", i)
		}
	}
}

func TestCoverage(t *testing.T) {
	r := NewResult()
	if r.Coverage() != 1 {
		t.Errorf("empty coverage = %v", r.Coverage())
	}
	r.LeavesTotal = 8
	r.LeavesAnswered = 7
	if c := r.Coverage(); math.Abs(c-0.875) > 1e-9 {
		t.Errorf("coverage = %v", c)
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{Table: "events", From: 1, To: 2,
		Filters:      []Filter{{Column: "service", Op: OpEq, Str: "web"}},
		Aggregations: []Aggregation{{Op: AggCount}, {Op: AggAvg, Column: "lat"}},
		GroupBy:      []string{"service"}, Limit: 10}
	s := q.String()
	for _, want := range []string{"count", "avg(lat)", "events", "GROUP BY service", "LIMIT 10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestFormat(t *testing.T) {
	q := &Query{Table: "t", GroupBy: []string{"svc"}, Aggregations: []Aggregation{{Op: AggCount}}}
	out := Format(q, []Row{{Key: []string{"web"}, Values: []float64{42}}})
	if !strings.Contains(out, "web") || !strings.Contains(out, "42.000") {
		t.Errorf("Format = %q", out)
	}
}
