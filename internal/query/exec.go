package query

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scuba/internal/column"
	"scuba/internal/rowblock"
	"scuba/internal/table"
)

// Block is the executor's view of a batch of rows: a sealed row block or an
// unsealed builder snapshot.
type Block interface {
	Rows() int
	Times() ([]int64, error)
	HasColumn(name string) bool
	DecodeColumn(name string) (column.Column, error)
}

var (
	_ Block = (*rowblock.RowBlock)(nil)
	_ Block = (*rowblock.UnsealedView)(nil)
)

// ExecOptions tune one execution. The zero value scans serially with no
// cross-query cache — the pre-parallelism behavior.
type ExecOptions struct {
	// Workers bounds the sealed-block scan pool. 0 or negative means
	// GOMAXPROCS; 1 scans serially on the calling goroutine.
	Workers int
	// Cache, when non-nil, holds decoded columns across queries (shared by
	// every query against the same table; safe for concurrent use).
	Cache *DecodeCache
}

// ExecuteTable runs a query over one leaf's copy of a table with default
// options (worker pool sized to GOMAXPROCS, no cross-query cache).
func ExecuteTable(tbl *table.Table, q *Query) (*Result, error) {
	return ExecuteTableOpts(tbl, q, ExecOptions{})
}

// ExecuteTableOpts runs a query over one leaf's copy of a table, producing a
// partial result. Sealed blocks outside the time range are skipped via their
// min/max headers without decoding anything (§2.1), blocks whose zone maps
// exclude a filter are pruned without decode, and the survivors are fanned
// over a bounded worker pool, each worker folding into a private Result that
// is merged at the end (the cross-leaf merge is associative and commutative,
// so block order doesn't matter). Unsealed rows are scanned in-line through
// a snapshot so data is queryable the moment it arrives.
func ExecuteTableOpts(tbl *table.Table, q *Query, opts ExecOptions) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	res := NewResult()
	// The whole sealed scan runs inside the table's query gate: shutdown
	// waits for in-flight queries before releasing block columns, so workers
	// must not outlive the gate.
	err := tbl.ScanBlocks(q.From, q.To, func(blocks []*rowblock.RowBlock) error {
		return scanSealed(blocks, q, res, opts)
	})
	if err != nil {
		return nil, err
	}
	res.BlocksSkipped = int64(tbl.Stats().NumBlocks) - res.BlocksScanned - res.BlocksPruned
	view, err := tbl.ActiveSnapshot()
	if err != nil {
		return nil, err
	}
	if view != nil && view.Overlaps(q.From, q.To) {
		res.BlocksScanned-- // the unsealed tail is not a sealed block
		if err := scanBlock(view, q, res, nil); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// scanSealed folds the sealed-block snapshot into res, in parallel when the
// pool and the block count warrant it.
func scanSealed(blocks []*rowblock.RowBlock, q *Query, res *Result, opts ExecOptions) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers <= 1 {
		for _, rb := range blocks {
			if err := scanBlock(rb, q, res, opts.Cache); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		partial = make([]*Result, workers)
		errs    = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := NewResult()
			partial[w] = part
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(blocks) {
					return
				}
				if err := scanBlock(blocks[i], q, part, opts.Cache); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	mergeStart := time.Now()
	for _, part := range partial {
		res.Merge(part)
	}
	res.Phases.MergeNanos += time.Since(mergeStart).Nanoseconds()
	return nil
}

// ScanBlock folds one block into a result (serial, uncached). Kept as the
// single-block entry point for tests and tools.
func ScanBlock(rb Block, q *Query, res *Result) error {
	return scanBlock(rb, q, res, nil)
}

// scanBlock folds one block into a result, consulting zone maps to skip the
// block outright and the decode cache for column reuse across queries. Each
// phase's time lands in res.Phases: the zone-map test as prune, column
// materialization as decode, and the remaining per-row work as scan. The
// accounting costs a handful of clock reads per block (and two per decoded
// column), which is noise against even a pruned block's work.
func scanBlock(rb Block, q *Query, res *Result, dc *DecodeCache) error {
	pruneStart := time.Now()
	pruned := blockPruned(rb, q)
	scanStart := time.Now()
	res.Phases.PruneNanos += scanStart.Sub(pruneStart).Nanoseconds()
	if pruned {
		res.BlocksPruned++
		return nil
	}
	decodeBefore := res.Phases.DecodeNanos
	err := scanBlockRows(rb, q, res, dc)
	// Scan time is the block's wall time minus what the decode closure
	// already attributed to decode.
	res.Phases.ScanNanos += time.Since(scanStart).Nanoseconds() - (res.Phases.DecodeNanos - decodeBefore)
	return err
}

// scanBlockRows is scanBlock after the prune decision: decode what the query
// needs and fold every live row in.
func scanBlockRows(rb Block, q *Query, res *Result, dc *DecodeCache) error {
	res.BlocksScanned++
	n := rb.Rows()
	res.RowsScanned += int64(n)

	// trackCache mirrors the registry accounting inside dc.Get: only sealed
	// blocks are cacheable, so per-result hit/miss counts stay comparable to
	// the leaf's query.decode_cache.* counters.
	trackCache := dc != nil && cacheable(rb)
	cache := make(map[string]column.Column)
	decode := func(name string) (column.Column, error) {
		if c, ok := cache[name]; ok {
			return c, nil
		}
		if !rb.HasColumn(name) {
			cache[name] = nil // column absent from this block: zero values
			return nil, nil
		}
		start := time.Now()
		if c, ok := dc.Get(rb, name); ok {
			res.Phases.DecodeNanos += time.Since(start).Nanoseconds()
			if trackCache {
				res.CacheHits++
			}
			cache[name] = c
			return c, nil
		}
		if trackCache {
			res.CacheMisses++
		}
		c, err := rb.DecodeColumn(name)
		if err != nil {
			res.Phases.DecodeNanos += time.Since(start).Nanoseconds()
			return nil, err
		}
		cache[name] = c
		dc.Put(rb, name, c)
		res.Phases.DecodeNanos += time.Since(start).Nanoseconds()
		return c, nil
	}

	// Row mask from the time predicate.
	times, err := rb.Times()
	if err != nil {
		return err
	}
	mask := make([]bool, n)
	live := 0
	for i, t := range times {
		if t >= q.From && t <= q.To {
			mask[i] = true
			live++
		}
	}

	// Filters narrow the mask.
	for _, f := range q.Filters {
		if live == 0 {
			return nil
		}
		col, err := decode(f.Column)
		if err != nil {
			return err
		}
		live, err = applyFilter(mask, live, col, f)
		if err != nil {
			return err
		}
	}
	if live == 0 {
		return nil
	}

	// Group keys.
	keys, err := groupKeys(q, n, times, decode)
	if err != nil {
		return err
	}

	// Aggregation inputs: numeric values for arithmetic ops, stringified
	// values for count-distinct.
	aggVals := make([][]float64, len(q.Aggregations))
	distinctGet := make([]func(int) string, len(q.Aggregations))
	for ai, a := range q.Aggregations {
		if !a.Op.needsColumn() {
			continue
		}
		col, err := decode(a.Column)
		if err != nil {
			return err
		}
		if a.Op == AggCountDistinct {
			get, err := stringGetter(col, a.Column)
			if err != nil {
				return err
			}
			distinctGet[ai] = get
			continue
		}
		vals, err := numericValues(col, n, a.Column)
		if err != nil {
			return err
		}
		aggVals[ai] = vals
	}

	for i := 0; i < n; i++ {
		if !mask[i] {
			continue
		}
		g := res.group(keys(i), q)
		for ai := range q.Aggregations {
			switch {
			case distinctGet[ai] != nil:
				g.Aggs[ai].ObserveDistinct(distinctGet[ai](i))
			case aggVals[ai] == nil:
				g.Aggs[ai].Observe(0) // count, or absent column -> zero
			default:
				g.Aggs[ai].Observe(aggVals[ai][i])
			}
		}
	}
	return nil
}

// stringGetter returns a per-row stringified accessor for group-by keys and
// count-distinct values.
func stringGetter(col column.Column, name string) (func(int) string, error) {
	switch c := col.(type) {
	case nil:
		return func(int) string { return "" }, nil
	case *column.Int64Column:
		return func(i int) string { return strconv.FormatInt(c.Values[i], 10) }, nil
	case *column.Float64Column:
		return func(i int) string { return strconv.FormatFloat(c.Values[i], 'g', -1, 64) }, nil
	case *column.StringColumn:
		return c.Value, nil
	default:
		return nil, fmt.Errorf("query: cannot stringify column %q of type %v", name, col.Type())
	}
}

// bucketStart floors t to its bucket's start (correct for negative times).
func bucketStart(t, bucket int64) int64 {
	b := t / bucket
	if t%bucket != 0 && t < 0 {
		b--
	}
	return b * bucket
}

// groupKeys returns a function producing the group key for row i. A time
// bucket, when requested, is the leading key component.
func groupKeys(q *Query, n int, times []int64, decode func(string) (column.Column, error)) (func(int) []string, error) {
	var getters []func(int) string
	if q.TimeBucketSeconds > 0 {
		bucket := q.TimeBucketSeconds
		getters = append(getters, func(i int) string {
			return strconv.FormatInt(bucketStart(times[i], bucket), 10)
		})
	}
	if len(q.GroupBy) == 0 && len(getters) == 0 {
		empty := []string{}
		return func(int) []string { return empty }, nil
	}
	colGetters := make([]func(int) string, len(q.GroupBy))
	for gi, name := range q.GroupBy {
		col, err := decode(name)
		if err != nil {
			return nil, err
		}
		get, err := stringGetter(col, name)
		if err != nil {
			return nil, fmt.Errorf("query: cannot group by column %q of type %v", name, col.Type())
		}
		colGetters[gi] = get
	}
	getters = append(getters, colGetters...)
	buf := make([]string, len(getters))
	return func(i int) []string {
		for gi, get := range getters {
			buf[gi] = get(i)
		}
		return buf
	}, nil
}

// numericValues extracts float64 values for aggregation.
func numericValues(col column.Column, n int, name string) ([]float64, error) {
	switch c := col.(type) {
	case nil:
		return nil, nil // absent column: zeros
	case *column.Int64Column:
		out := make([]float64, len(c.Values))
		for i, v := range c.Values {
			out[i] = float64(v)
		}
		return out, nil
	case *column.Float64Column:
		return c.Values, nil
	default:
		return nil, fmt.Errorf("query: cannot aggregate column %q of type %v", name, col.Type())
	}
}

// applyFilter narrows the mask in place and returns the surviving count.
func applyFilter(mask []bool, live int, col column.Column, f Filter) (int, error) {
	switch c := col.(type) {
	case nil:
		// Absent column: evaluate the predicate once against the type's
		// zero value, inferred from the filter's operand.
		keep, err := zeroValueMatches(f)
		if err != nil {
			return 0, err
		}
		if keep {
			return live, nil
		}
		for i := range mask {
			mask[i] = false
		}
		return 0, nil
	case *column.Int64Column:
		if f.Op == OpContains {
			return 0, fmt.Errorf("query: contains on integer column %q", f.Column)
		}
		for i, v := range c.Values {
			if mask[i] && !cmpInt(v, f.Int, f.Op) {
				mask[i] = false
				live--
			}
		}
		return live, nil
	case *column.Float64Column:
		if f.Op == OpContains {
			return 0, fmt.Errorf("query: contains on float column %q", f.Column)
		}
		for i, v := range c.Values {
			if mask[i] && !cmpFloat(v, f.Float, f.Op) {
				mask[i] = false
				live--
			}
		}
		return live, nil
	case *column.StringColumn:
		if f.Op == OpContains {
			return 0, fmt.Errorf("query: contains on string column %q (use =)", f.Column)
		}
		// Evaluate once per dictionary entry, then test IDs per row — the
		// payoff of dictionary encoding at query time.
		match := make([]bool, len(c.Dict))
		for id, s := range c.Dict {
			match[id] = cmpString(s, f.Str, f.Op)
		}
		for i, id := range c.IDs {
			if mask[i] && !match[id] {
				mask[i] = false
				live--
			}
		}
		return live, nil
	case *column.StringSetColumn:
		switch f.Op {
		case OpContains:
			target := -1
			for id, s := range c.Dict {
				if s == f.Str {
					target = id
					break
				}
			}
			for i := range c.Rows {
				if !mask[i] {
					continue
				}
				found := false
				if target >= 0 {
					for _, id := range c.Rows[i] {
						if int(id) == target {
							found = true
							break
						}
					}
				}
				if !found {
					mask[i] = false
					live--
				}
			}
			return live, nil
		default:
			return 0, fmt.Errorf("query: %v on string-set column %q (only contains)", f.Op, f.Column)
		}
	default:
		return 0, fmt.Errorf("query: unsupported column type %v", col.Type())
	}
}

func zeroValueMatches(f Filter) (bool, error) {
	switch f.Op {
	case OpContains:
		return false, nil // empty set contains nothing
	default:
	}
	// Prefer the operand that is set; ambiguous zero operands are fine
	// because every interpretation agrees (0 == 0, "" == "").
	if f.Str != "" {
		return cmpString("", f.Str, f.Op), nil
	}
	if f.Float != 0 {
		return cmpFloat(0, f.Float, f.Op), nil
	}
	if f.Int != 0 {
		return cmpInt(0, f.Int, f.Op), nil
	}
	// All-zero operand: "" vs "" and 0 vs 0 behave identically under every
	// operator except string/number ordering edge cases, which also agree.
	return cmpInt(0, 0, f.Op), nil
}

func cmpInt(a, b int64, op CompareOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

func cmpFloat(a, b float64, op CompareOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

func cmpString(a, b string, op CompareOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}
