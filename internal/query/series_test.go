package query

import (
	"strconv"
	"strings"
	"testing"

	"scuba/internal/rowblock"
	"scuba/internal/table"
)

func TestTimeBucketSeries(t *testing.T) {
	tbl := fixtureTable(t) // times 1000..1299, one row per second
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		TimeBucketSeconds: 100,
		Aggregations:      []Aggregation{{Op: AggCount}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) != 3 {
		t.Fatalf("buckets = %d: %v", len(rows), rows)
	}
	wantBuckets := []string{"1000", "1100", "1200"}
	for i, r := range rows {
		if r.Key[0] != wantBuckets[i] {
			t.Errorf("bucket %d = %q, want %q", i, r.Key[0], wantBuckets[i])
		}
		if r.Values[0] != 100 {
			t.Errorf("bucket %d count = %v", i, r.Values[0])
		}
	}
}

func TestTimeBucketWithGroupBy(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		TimeBucketSeconds: 150,
		GroupBy:           []string{"service"},
		Aggregations:      []Aggregation{{Op: AggCount}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	// 2 buckets (900, 1050, 1200 starts -> times 1000-1299 hit buckets
	// 900, 1050, 1200) x 3 services.
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Buckets come back in ascending order; within a bucket, groups by
	// descending count then key.
	prevBucket := int64(-1 << 62)
	total := 0.0
	for _, r := range rows {
		b, err := strconv.ParseInt(r.Key[0], 10, 64)
		if err != nil {
			t.Fatalf("bucket key %q", r.Key[0])
		}
		if b < prevBucket {
			t.Fatal("buckets out of order")
		}
		prevBucket = b
		if len(r.Key) != 2 {
			t.Fatalf("key = %v", r.Key)
		}
		total += r.Values[0]
	}
	if total != 300 {
		t.Errorf("total = %v", total)
	}
}

func TestTimeBucketMergesAcrossBlocks(t *testing.T) {
	// A bucket spanning two row blocks must merge into one output row.
	tbl := table.New("events", table.Options{})
	for b := 0; b < 2; b++ {
		rows := make([]rowblock.Row, 50)
		for i := range rows {
			rows[i] = rowblock.Row{Time: int64(b*50 + i)} // 0..99 across blocks
		}
		if err := tbl.AddRows(rows, 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		TimeBucketSeconds: 100,
		Aggregations:      []Aggregation{{Op: AggCount}},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) != 1 || rows[0].Values[0] != 100 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestBucketStartNegativeTimes(t *testing.T) {
	cases := []struct{ t, bucket, want int64 }{
		{0, 60, 0},
		{59, 60, 0},
		{60, 60, 60},
		{-1, 60, -60},
		{-60, 60, -60},
		{-61, 60, -120},
	}
	for _, c := range cases {
		if got := bucketStart(c.t, c.bucket); got != c.want {
			t.Errorf("bucketStart(%d, %d) = %d, want %d", c.t, c.bucket, got, c.want)
		}
	}
}

func TestOrderByAggregation(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []Aggregation{{Op: AggCount}, {Op: AggSum, Column: "latency"}},
		OrderBy:      &Order{Agg: 1, Asc: true},
	}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	prev := -1.0
	for _, r := range rows {
		if r.Values[1] < prev {
			t.Fatalf("order-by asc violated: %v", rows)
		}
		prev = r.Values[1]
	}
	// Descending too.
	q.OrderBy.Asc = false
	rows = res.Rows(q)
	prev = 1 << 62
	for _, r := range rows {
		if r.Values[1] > prev {
			t.Fatalf("order-by desc violated: %v", rows)
		}
		prev = r.Values[1]
	}
}

func TestOrderByValidation(t *testing.T) {
	q := &Query{Table: "t", From: 0, To: 1,
		Aggregations: []Aggregation{{Op: AggCount}},
		OrderBy:      &Order{Agg: 3},
	}
	if err := q.Validate(); err == nil {
		t.Error("out-of-range order-by accepted")
	}
	q2 := &Query{Table: "t", From: 0, To: 1,
		Aggregations:      []Aggregation{{Op: AggCount}},
		TimeBucketSeconds: -5,
	}
	if err := q2.Validate(); err == nil {
		t.Error("negative bucket accepted")
	}
}

func TestSeriesFormatHeader(t *testing.T) {
	q := &Query{Table: "t", TimeBucketSeconds: 60,
		Aggregations: []Aggregation{{Op: AggCount}}}
	out := Format(q, []Row{{Key: []string{"1700000000"}, Values: []float64{5}}})
	if !strings.Contains(out, "time_bucket") {
		t.Errorf("Format = %q", out)
	}
}

func TestSeriesSurvivesWireRoundTrip(t *testing.T) {
	tbl := fixtureTable(t)
	q := &Query{Table: "events", From: 0, To: 1 << 40,
		TimeBucketSeconds: 100,
		Aggregations:      []Aggregation{{Op: AggCount}}}
	res, err := ExecuteTable(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	back := Import(res.Export())
	a, b := res.Rows(q), back.Rows(q)
	if len(a) != len(b) {
		t.Fatalf("rows %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key[0] != b[i].Key[0] || a[i].Values[0] != b[i].Values[0] {
			t.Errorf("row %d differs", i)
		}
	}
}
