package query

import "math"

// histBuckets is the number of log-scale buckets. Bucket i covers values
// whose magnitude has bit length i (bucket 0 holds zero and negatives are
// clamped into bucket 0; Scuba metrics — latencies, counts, bytes — are
// non-negative). Log-scale histograms merge by element-wise addition, which
// is what makes percentiles computable across leaves.
const histBuckets = 65

// Histogram is a mergeable log₂ histogram for percentile aggregation.
type Histogram struct {
	Counts [histBuckets]int64
	Total  int64
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.Counts[bucketOf(v)]++
	h.Total++
}

func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	b := 1 + int(math.Floor(math.Log2(v)))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketMid returns a representative value for a bucket (geometric middle).
func bucketMid(b int) float64 {
	if b == 0 {
		return 0
	}
	lo := math.Exp2(float64(b - 1))
	return lo * 1.5
}

// Merge adds another histogram's counts into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Total += o.Total
}

// Quantile returns an approximation of the q'th quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) float64 {
	if h.Total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}
