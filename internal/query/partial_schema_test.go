package query

import (
	"testing"

	"scuba/internal/rowblock"
	"scuba/internal/table"
)

// partialTable builds a table whose schema evolved between blocks: block 0
// has no "region" or "errors" columns, block 1 has both, block 2 has only
// "errors". Every block has "service". This is Scuba's normal life — rows
// are schemaless and columns appear per block.
func partialTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("evolving", table.Options{})
	addBlock := func(base int64, mk func(i int) map[string]rowblock.Value) {
		t.Helper()
		rows := make([]rowblock.Row, 50)
		for i := range rows {
			rows[i] = rowblock.Row{Time: base + int64(i), Cols: mk(i)}
		}
		if err := tbl.AddRows(rows, 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	addBlock(1000, func(i int) map[string]rowblock.Value {
		return map[string]rowblock.Value{
			"service": rowblock.StringValue("web"),
		}
	})
	addBlock(2000, func(i int) map[string]rowblock.Value {
		return map[string]rowblock.Value{
			"service": rowblock.StringValue("api"),
			"region":  rowblock.StringValue([]string{"east", "west"}[i%2]),
			"errors":  rowblock.Int64Value(int64(i % 5)),
		}
	})
	addBlock(3000, func(i int) map[string]rowblock.Value {
		return map[string]rowblock.Value{
			"service": rowblock.StringValue("web"),
			"errors":  rowblock.Int64Value(int64(10 + i%5)),
		}
	})
	return tbl
}

// TestPartiallyAbsentColumn drives every consumer of the decode closure's
// nil-column contract (filters, group keys, numeric aggregation,
// count-distinct) over a column present in some blocks and absent in others.
func TestPartiallyAbsentColumn(t *testing.T) {
	tbl := partialTable(t)
	all := int64(0)
	tests := []struct {
		name string
		q    *Query
		want func(t *testing.T, res *Result, rows []Row)
	}{
		{
			name: "filter eq on partially absent string",
			q: &Query{Table: "evolving", From: all, To: 1 << 40,
				Filters:      []Filter{{Column: "region", Op: OpEq, Str: "east"}},
				Aggregations: []Aggregation{{Op: AggCount}}},
			want: func(t *testing.T, res *Result, rows []Row) {
				// Only block 1 has region; 25 of its 50 rows are east.
				// Blocks 0 and 2 evaluate "" == "east" -> false.
				if rows[0].Values[0] != 25 {
					t.Errorf("count = %v, want 25", rows[0].Values[0])
				}
			},
		},
		{
			name: "filter zero-value matches absent blocks",
			q: &Query{Table: "evolving", From: all, To: 1 << 40,
				Filters:      []Filter{{Column: "region", Op: OpNe, Str: "east"}},
				Aggregations: []Aggregation{{Op: AggCount}}},
			want: func(t *testing.T, res *Result, rows []Row) {
				// Absent blocks: "" != "east" keeps all 100 rows; block 1
				// keeps its 25 west rows.
				if rows[0].Values[0] != 125 {
					t.Errorf("count = %v, want 125", rows[0].Values[0])
				}
			},
		},
		{
			name: "filter eq on partially absent int",
			q: &Query{Table: "evolving", From: all, To: 1 << 40,
				Filters:      []Filter{{Column: "errors", Op: OpEq, Int: 0}},
				Aggregations: []Aggregation{{Op: AggCount}}},
			want: func(t *testing.T, res *Result, rows []Row) {
				// Block 0 absent: zero matches all 50. Block 1: 10 rows with
				// errors==0. Block 2: none (values 10-14).
				if rows[0].Values[0] != 60 {
					t.Errorf("count = %v, want 60", rows[0].Values[0])
				}
			},
		},
		{
			name: "group by partially absent column",
			q: &Query{Table: "evolving", From: all, To: 1 << 40,
				GroupBy:      []string{"region"},
				Aggregations: []Aggregation{{Op: AggCount}}},
			want: func(t *testing.T, res *Result, rows []Row) {
				// Groups: "" (100 rows from blocks 0+2), east (25), west (25).
				if len(rows) != 3 {
					t.Fatalf("groups = %d, want 3", len(rows))
				}
				counts := map[string]float64{}
				for _, r := range rows {
					counts[r.Key[0]] = r.Values[0]
				}
				if counts[""] != 100 || counts["east"] != 25 || counts["west"] != 25 {
					t.Errorf("group counts = %v", counts)
				}
			},
		},
		{
			name: "aggregate partially absent numeric column",
			q: &Query{Table: "evolving", From: all, To: 1 << 40,
				Aggregations: []Aggregation{{Op: AggSum, Column: "errors"}, {Op: AggCount}}},
			want: func(t *testing.T, res *Result, rows []Row) {
				// Block 0 contributes zeros; block 1 sums 0..4 ten times
				// (100); block 2 sums 10..14 ten times (600).
				if rows[0].Values[0] != 700 {
					t.Errorf("sum = %v, want 700", rows[0].Values[0])
				}
				if rows[0].Values[1] != 150 {
					t.Errorf("count = %v, want 150", rows[0].Values[1])
				}
			},
		},
		{
			name: "count distinct over partially absent column",
			q: &Query{Table: "evolving", From: all, To: 1 << 40,
				Aggregations: []Aggregation{{Op: AggCountDistinct, Column: "region"}}},
			want: func(t *testing.T, res *Result, rows []Row) {
				// east, west, and "" from the absent blocks.
				if rows[0].Values[0] != 3 {
					t.Errorf("distinct = %v, want 3", rows[0].Values[0])
				}
			},
		},
		{
			name: "group by absent-everywhere column",
			q: &Query{Table: "evolving", From: all, To: 1 << 40,
				GroupBy:      []string{"never-present"},
				Aggregations: []Aggregation{{Op: AggCount}}},
			want: func(t *testing.T, res *Result, rows []Row) {
				if len(rows) != 1 || rows[0].Key[0] != "" || rows[0].Values[0] != 150 {
					t.Errorf("rows = %+v", rows)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				res, err := ExecuteTableOpts(tbl, tc.q, ExecOptions{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				tc.want(t, res, res.Rows(tc.q))
			}
		})
	}
}
