package scuba_test

// End-to-end observability: run scubad as a real OS process with -http,
// scrape /metrics and /debug/recovery over HTTP, restart it through shared
// memory, and check the restart-phase breakdown and the flight-recorder
// story survive the process boundary.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scuba"
)

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, b)
	}
	return string(b)
}

func TestDaemonObservabilityEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess integration test")
	}
	bin := filepath.Join(t.TempDir(), "scubad")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scubad")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building scubad: %v\n%s", err, out)
	}

	workDir := t.TempDir()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	httpAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startDaemon := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-id", "0",
			"-addr", addr,
			"-http", httpAddr,
			"-shm-dir", workDir,
			"-namespace", "otest",
			"-disk-root", filepath.Join(workDir, "disk"),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting scubad: %v", err)
		}
		return cmd
	}
	waitReady := func(c *scuba.Client) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if err := c.Ping(); err == nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatal("daemon did not become ready")
	}

	// ---- first process: load, query, scrape /metrics ----
	proc := startDaemon()
	client := scuba.DialLeaf(addr)
	defer client.Close()
	waitReady(client)

	gen := scuba.ServiceLogs(7, 1700000000)
	if err := client.AddRows("service_logs", gen.NextBatch(5000)); err != nil {
		t.Fatal(err)
	}
	q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
	for i := 0; i < 3; i++ {
		if _, err := client.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	body := httpGetBody(t, "http://"+httpAddr+"/metrics")
	for _, want := range []string{
		"counter rpc_query 3",
		"timer query_latency count=3",
		"histogram query_latency_hist count=3",
		"p50=", "p95=", "p99=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	var dump scuba.RecoveryDump
	if err := json.Unmarshal([]byte(httpGetBody(t, "http://"+httpAddr+"/debug/recovery")), &dump); err != nil {
		t.Fatalf("bad /debug/recovery JSON: %v", err)
	}
	if dump.CurrentRun == nil || len(dump.CurrentEvents) == 0 {
		t.Fatalf("first run recorded no events: %+v", dump)
	}

	// ---- restart through shared memory ----
	if _, err := client.Shutdown(true); err != nil {
		t.Fatalf("shutdown RPC: %v", err)
	}
	if err := waitExit(proc, 10*time.Second); err != nil {
		t.Fatalf("daemon did not exit: %v", err)
	}

	proc2 := startDaemon()
	defer func() {
		proc2.Process.Signal(os.Interrupt) //nolint:errcheck
		waitExit(proc2, 10*time.Second)    //nolint:errcheck
	}()
	client2 := scuba.DialLeaf(addr)
	defer client2.Close()
	waitReady(client2)

	// /metrics of the restarted process: the Figure 7 phase timers.
	body = httpGetBody(t, "http://"+httpAddr+"/metrics")
	for _, want := range []string{
		"timer restart_map count=1",
		"timer restart_copy_in count=1",
		"histogram restart_copy_in_table_us count=1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-restart /metrics missing %q:\n%s", want, body)
		}
	}

	// /debug/recovery: the memory path taken, and the previous run's story
	// (its Figure 6 copy-out + commit) read back from the flight recorder.
	dump = scuba.RecoveryDump{}
	if err := json.Unmarshal([]byte(httpGetBody(t, "http://"+httpAddr+"/debug/recovery")), &dump); err != nil {
		t.Fatalf("bad /debug/recovery JSON: %v", err)
	}
	rec, ok := dump.Recovery.(map[string]any)
	if !ok || rec["Path"] != "memory" {
		t.Errorf("recovery = %+v, want memory path", dump.Recovery)
	}
	if dump.PreviousRun == nil {
		t.Fatal("no previous-run summary after restart")
	}
	if dump.PreviousRun.Failed {
		t.Errorf("clean previous run marked failed: %+v", dump.PreviousRun)
	}
	var sawCopyOut, sawCommit bool
	for _, ev := range dump.PreviousEvents {
		if ev.KindName == "end" && ev.Phase == "restart.copy_out" {
			sawCopyOut = true
		}
		if ev.KindName == "end" && ev.Phase == "restart.commit" {
			sawCommit = true
		}
	}
	if !sawCopyOut || !sawCommit {
		t.Errorf("previous events missing copy-out/commit spans: %+v", dump.PreviousEvents)
	}
	// Data really is back (the restart the metrics describe happened).
	res, err := client2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.Rows(q); len(rows) == 0 || rows[0].Values[0] != 5000 {
		t.Fatalf("post-restart query = %+v", res.Rows(q))
	}
}
