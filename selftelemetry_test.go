package scuba_test

// The Scuba-on-Scuba keystone: a real subprocess cluster observes itself.
// The aggregator's scraper ingests every leaf's metrics snapshot into
// __system.leaf_metrics, a rollover drill persists its restart timeline and
// the probe's coverage timeline into __system.rollover, and all of it is
// queried back through the same aggregator the drill was exercising. Because
// __system tables are plain leaf tables, a second rollover then proves the
// telemetry itself rides the shared-memory restart path: every row written
// before the restarts is still served after them.

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"scuba"
)

// countSystemRows runs a filtered count against a __system table through the
// aggregator and also returns how many leaves answered.
func countSystemRows(t *testing.T, agg *scuba.Client, table, event string) (float64, *scuba.Result) {
	t.Helper()
	q := &scuba.Query{
		Table:        table,
		From:         0,
		To:           1 << 62,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
	}
	if event != "" {
		q.Filters = []scuba.Filter{{Column: "event", Op: scuba.OpEq, Str: event}}
	}
	res, err := agg.Query(q)
	if err != nil {
		t.Fatalf("querying %s: %v", table, err)
	}
	rows := res.Rows(q)
	if len(rows) == 0 {
		return 0, res
	}
	return rows[0].Values[0], res
}

// waitForSystemRows polls until the table serves at least want matching rows
// (telemetry delivery is asynchronous by design: the sink must never block
// the paths it observes).
func waitForSystemRows(t *testing.T, agg *scuba.Client, table, event string, want float64) float64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := countSystemRows(t, agg, table, event)
		if got >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s (event=%q): %v rows after 10s, want >= %v", table, event, got, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestSelfTelemetryAcrossRollover(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess self-telemetry drill")
	}
	pc, err := scuba.StartProcCluster(scuba.ProcConfig{
		BinPath:           buildScubadBinary(t),
		Machines:          2,
		LeavesPerMachine:  2,
		Replication:       2,
		WorkDir:           t.TempDir(),
		Namespace:         "seltel",
		ScrapeInterval:    100 * time.Millisecond,
		TelemetryInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Close)
	n := len(pc.Leaves())

	placer := pc.NewShardedPlacer()
	gen := scuba.ServiceLogs(7, 1700000000)
	for sent := 0; sent < 5000; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			t.Fatal(err)
		}
	}
	agg := pc.AggClient()

	// Phase 1: the scraper and each leaf's own sink populate the __system
	// tables (one leaf_metrics row per leaf per scrape; metric-snapshot
	// rows from every scubad's telemetry loop).
	waitForSystemRows(t, agg, scuba.SystemLeafMetricsTable, "", float64(n))
	waitForSystemRows(t, agg, scuba.SystemMetricsTable, "", 1)

	// Each leaf must appear in the scrape with healthy vitals.
	perLeaf := &scuba.Query{
		Table:        scuba.SystemLeafMetricsTable,
		From:         0,
		To:           1 << 62,
		GroupBy:      []string{"leaf"},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggMax, Column: "rows"}},
	}
	res, err := agg.Query(perLeaf)
	if err != nil {
		t.Fatal(err)
	}
	leafRows := res.Rows(perLeaf)
	if len(leafRows) != n {
		t.Fatalf("leaf_metrics covers %d leaves, want %d: %+v", len(leafRows), n, leafRows)
	}
	var scraped int64
	for _, r := range leafRows {
		if r.Values[1] <= 0 {
			t.Errorf("leaf %s scraped with 0 rows of data", r.Key[0])
		}
		scraped += int64(r.Values[0])
	}

	// Phase 2: rollover drill #1 under a correctness probe, then persist
	// both timelines as __system.rollover rows.
	q := rolloverQuery()
	baseline, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	baseRows := baseline.Rows(q)
	probe := scuba.StartAvailabilityProbe(agg, scuba.ProbeConfig{
		Query: q,
		Check: func(res *scuba.Result) error {
			if !reflect.DeepEqual(res.Rows(q), baseRows) {
				return errors.New("result drifted from baseline")
			}
			return nil
		},
	})
	drillStart := time.Now()
	rep, err := pc.ProcRollover(scuba.ProcRolloverConfig{
		BatchFraction: 0.25,
		MaxPerMachine: 1,
		UseShm:        true,
		KillTimeout:   time.Minute,
		Tables:        []string{"service_logs"},
	})
	avail := probe.Stop()
	if err != nil {
		t.Fatalf("rollover: %v", err)
	}
	if err := pc.PersistRollover(rep, "drill", drillStart); err != nil {
		t.Fatalf("persisting rollover report: %v", err)
	}
	if err := pc.PersistAvailability(&avail, "drill", drillStart); err != nil {
		t.Fatalf("persisting probe report: %v", err)
	}

	// Phase 3: reconcile the persisted timeline against the in-memory
	// reports, through the real aggregator.
	restarts, _ := countSystemRows(t, agg, scuba.SystemRolloverTable, "restart")
	if int(restarts) != len(rep.Restarts) {
		t.Errorf("__system.rollover restart rows = %v, want %d", restarts, len(rep.Restarts))
	}
	points, _ := countSystemRows(t, agg, scuba.SystemRolloverTable, "probe")
	if int(points) != len(avail.Points) {
		t.Errorf("__system.rollover probe rows = %v, want %d", points, len(avail.Points))
	}
	summaries, _ := countSystemRows(t, agg, scuba.SystemRolloverTable, "rollover_summary")
	if summaries != 1 {
		t.Errorf("rollover_summary rows = %v, want 1", summaries)
	}
	minCovQ := &scuba.Query{
		Table:        scuba.SystemRolloverTable,
		From:         0,
		To:           1 << 62,
		Filters:      []scuba.Filter{{Column: "event", Op: scuba.OpEq, Str: "probe"}},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggMin, Column: "shard_coverage"}},
	}
	covRes, err := agg.Query(minCovQ)
	if err != nil {
		t.Fatal(err)
	}
	if rows := covRes.Rows(minCovQ); len(avail.Points) > 0 {
		if len(rows) == 0 {
			t.Fatal("no probe rows for min-coverage reconciliation")
		} else if got := rows[0].Values[0]; math.Abs(got-avail.MinShardCoverage) > 1e-9 {
			t.Errorf("persisted min shard coverage %v != probe's %v", got, avail.MinShardCoverage)
		}
	}
	// The drill itself was scraped: leaf_metrics keeps accumulating and
	// records which leaves recovered from memory.
	waitForSystemRows(t, agg, scuba.SystemLeafMetricsTable, "", float64(scraped+1))

	// Phase 4: restart every leaf again. The telemetry written before these
	// restarts must still be served afterwards — __system tables ride the
	// shared-memory path like any other table.
	if _, err := pc.ProcRollover(scuba.ProcRolloverConfig{
		BatchFraction: 0.25,
		MaxPerMachine: 1,
		UseShm:        true,
		KillTimeout:   time.Minute,
	}); err != nil {
		t.Fatalf("second rollover: %v", err)
	}
	restarts2, res2 := countSystemRows(t, agg, scuba.SystemRolloverTable, "restart")
	if int(restarts2) != len(rep.Restarts) {
		t.Errorf("restart rows after second rollover = %v, want %d (telemetry lost in restart)",
			restarts2, len(rep.Restarts))
	}
	if res2.LeavesAnswered != res2.LeavesTotal {
		t.Errorf("post-restart telemetry coverage %d/%d", res2.LeavesAnswered, res2.LeavesTotal)
	}
	points2, _ := countSystemRows(t, agg, scuba.SystemRolloverTable, "probe")
	if int(points2) != len(avail.Points) {
		t.Errorf("probe rows after second rollover = %v, want %d", points2, len(avail.Points))
	}
	t.Logf("self-telemetry: %d leaves, %v leaf_metrics rows, %d restart rows and %d probe points preserved across a full second rollover",
		n, scraped, int(restarts2), int(points2))
}
