package scuba_test

// The profiling keystone: a real subprocess cluster profiles itself. Every
// scubad leaf runs the continuous profiler at a fast cadence and ingests its
// own CPU/heap captures into __system.profiles; an in-process profiler
// shadows the aggregator's tracer so a slow query triggers an anomaly
// capture tagged with that query's trace ID. Both kinds of rows are read
// back through the same aggregator that was being profiled — and, because
// __system.profiles is a plain leaf table, a shared-memory rollover must
// serve every pre-restart capture afterwards too.

import (
	"sync/atomic"
	"testing"
	"time"

	"scuba"
)

// countProfileRows counts __system.profiles rows matching the filters
// through the aggregator.
func countProfileRows(t *testing.T, agg *scuba.Client, filters []scuba.Filter) float64 {
	t.Helper()
	q := &scuba.Query{
		Table:        scuba.SystemProfilesTable,
		From:         0,
		To:           1 << 62,
		Filters:      filters,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
	}
	res, err := agg.Query(q)
	if err != nil {
		t.Fatalf("querying %s: %v", scuba.SystemProfilesTable, err)
	}
	rows := res.Rows(q)
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Values[0]
}

// waitForProfileRows polls until at least want matching rows are served
// (capture and delivery are both asynchronous by design).
func waitForProfileRows(t *testing.T, agg *scuba.Client, filters []scuba.Filter, want float64) float64 {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		got := countProfileRows(t, agg, filters)
		if got >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s (%+v): %v rows after 15s, want >= %v",
				scuba.SystemProfilesTable, filters, got, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestProfilesAcrossRollover(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess profiling drill")
	}
	pc, err := scuba.StartProcCluster(scuba.ProcConfig{
		BinPath:          buildScubadBinary(t),
		Machines:         2,
		LeavesPerMachine: 1,
		WorkDir:          t.TempDir(),
		Namespace:        "profiles",
		ProfileInterval:  400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Close)

	placer := pc.NewShardedPlacer()
	gen := scuba.ServiceLogs(11, 1700000000)
	for sent := 0; sent < 4000; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			t.Fatal(err)
		}
	}
	agg := pc.AggClient()

	// Phase 1: each leaf's steady cadence delivers interval captures into
	// its own store; the "(total)" row makes even an idle window visible.
	intervalFilter := []scuba.Filter{{Column: "trigger", Op: scuba.OpEq, Str: scuba.ProfileTriggerInterval}}
	waitForProfileRows(t, agg, intervalFilter, 2)
	perSource := &scuba.Query{
		Table:        scuba.SystemProfilesTable,
		From:         0,
		To:           1 << 62,
		GroupBy:      []string{"source"},
		Filters:      intervalFilter,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		res, err := agg.Query(perSource)
		if err != nil {
			t.Fatal(err)
		}
		sources := res.Rows(perSource)
		if len(sources) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interval captures from %d sources after 15s, want every leaf (2): %+v",
				len(sources), sources)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase 2: an in-process profiler shadows the aggregator's tracer, the
	// way scuba-aggd composes them. A 1ns slow threshold makes the next
	// service_logs query an anomaly; the capture it triggers must carry
	// that query's trace ID. (OnTrace ignores __system queries, so the
	// polling above and below can never trigger captures of its own.)
	emit := func(table string, rows []scuba.Row) error {
		var lastErr error
		for _, l := range pc.Leaves() {
			if err := l.Client().AddRows(table, rows); err != nil {
				lastErr = err
				continue
			}
			return nil
		}
		return lastErr
	}
	sink := scuba.NewTelemetrySink(scuba.TelemetrySinkConfig{
		Emit:            emit,
		Source:          "aggd",
		MetricsInterval: -1, // delivery-only
	})
	defer sink.Close()
	prof := scuba.NewProfiler(scuba.ProfilerConfig{
		Sink:          sink,
		Source:        "aggd",
		Interval:      -1, // anomalies only; the leaves cover the steady cadence
		AnomalyWindow: 50 * time.Millisecond,
	})
	defer prof.Close()
	var slowTraceID atomic.Uint64
	pc.Aggregator().Tracer = scuba.NewTracer(scuba.TracerOptions{
		SlowThreshold: time.Nanosecond,
		OnRecord: func(tr scuba.Trace) {
			if tr.Table == "service_logs" {
				slowTraceID.CompareAndSwap(0, tr.TraceID)
			}
			prof.OnTrace(tr)
		},
	})

	slowQ := &scuba.Query{
		Table:        "service_logs",
		From:         0,
		To:           1 << 62,
		GroupBy:      []string{"service"},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
	}
	if _, err := agg.Query(slowQ); err != nil {
		t.Fatal(err)
	}
	traceID := slowTraceID.Load()
	if traceID == 0 {
		t.Fatal("aggregator tracer recorded no service_logs trace")
	}
	anomalyFilter := []scuba.Filter{
		{Column: "trigger", Op: scuba.OpEq, Str: scuba.ProfileTriggerSlowQuery},
		{Column: "trace_id", Op: scuba.OpEq, Int: int64(traceID), Float: float64(traceID)},
	}
	waitForProfileRows(t, agg, anomalyFilter, 1)

	// Phase 3: freeze a cutoff and restart every leaf through shared
	// memory. Every capture row served before the restarts must still be
	// served after them — profiles ride the same restart path as the data
	// they describe.
	time.Sleep(50 * time.Millisecond) // let in-flight captures land before the cutoff
	cutoff := time.Now().UnixMicro()
	cutFilter := func(extra ...scuba.Filter) []scuba.Filter {
		return append([]scuba.Filter{
			{Column: "t_us", Op: scuba.OpLe, Int: cutoff, Float: float64(cutoff)},
		}, extra...)
	}
	beforeAll := countProfileRows(t, agg, cutFilter())
	beforeAnomaly := countProfileRows(t, agg, cutFilter(anomalyFilter...))
	if beforeAnomaly < 1 {
		t.Fatalf("no tagged anomaly rows before the rollover cutoff")
	}

	if _, err := pc.ProcRollover(scuba.ProcRolloverConfig{
		BatchFraction: 0.5,
		MaxPerMachine: 1,
		UseShm:        true,
		KillTimeout:   time.Minute,
	}); err != nil {
		t.Fatalf("rollover: %v", err)
	}

	afterAll := countProfileRows(t, agg, cutFilter())
	if afterAll != beforeAll {
		t.Errorf("pre-cutoff profile rows after rollover = %v, want %v (captures lost in restart)",
			afterAll, beforeAll)
	}
	afterAnomaly := countProfileRows(t, agg, cutFilter(anomalyFilter...))
	if afterAnomaly != beforeAnomaly {
		t.Errorf("tagged anomaly rows after rollover = %v, want %v", afterAnomaly, beforeAnomaly)
	}

	// The restarted leaves keep profiling: fresh interval captures arrive
	// with the same flags on the new processes.
	waitForProfileRows(t, agg,
		[]scuba.Filter{
			{Column: "trigger", Op: scuba.OpEq, Str: scuba.ProfileTriggerInterval},
			{Column: "t_us", Op: scuba.OpGt, Int: cutoff, Float: float64(cutoff)},
		}, 1)
	t.Logf("profiles: %v rows (%v slow-query-tagged, trace %d) survived a shared-memory rollover",
		beforeAll, beforeAnomaly, traceID)
}
